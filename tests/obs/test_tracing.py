"""The span tracer: nesting, capacity, exports, profile summary."""

import json

import pytest

from repro.obs.tracing import (
    Tracer,
    default_tracer,
    set_default_tracer,
    span,
)


class TestSpans:
    def test_span_records_name_attrs_and_duration(self):
        tracer = Tracer()
        with tracer.span("stage.one", n=12):
            pass
        (record,) = tracer.spans
        assert record.name == "stage.one"
        assert record.attrs == {"n": 12}
        assert record.duration_s >= 0.0
        assert record.depth == 0

    def test_spans_nest_with_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {r.name: r for r in tracer.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        # inner finishes first, so it is recorded first
        assert tracer.spans[0].name == "inner"

    def test_exception_keeps_the_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert [r.name for r in tracer.spans] == ["doomed"]
        assert tracer._depth == 0  # depth restored for the next span

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("ignored"):
            pass
        assert tracer.spans == []

    def test_capacity_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [r.name for r in tracer.spans] == ["s2", "s3", "s4"]
        assert tracer.dropped == 2
        tracer.clear()
        assert tracer.spans == [] and tracer.dropped == 0


class TestExports:
    def test_to_jsonl_round_trips(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a", k="v"):
            with tracer.span("b"):
                pass
        path = tmp_path / "trace.jsonl"
        tracer.to_jsonl(path)
        lines = [json.loads(line)
                 for line in path.read_text().splitlines() if line]
        assert lines == [r.to_dict() for r in tracer.spans]
        assert {line["name"] for line in lines} == {"a", "b"}

    def test_summary_aggregates_per_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("hot"):
                pass
        with tracer.span("cold"):
            pass
        summary = tracer.summary()
        assert summary["hot"]["count"] == 3
        assert summary["hot"]["total_s"] == pytest.approx(
            sum(r.duration_s for r in tracer.spans if r.name == "hot"))
        assert summary["hot"]["min_s"] <= summary["hot"]["mean_s"] \
            <= summary["hot"]["max_s"]

    def test_summary_table_lists_spans_and_drops(self):
        tracer = Tracer(capacity=1)
        with tracer.span("kept"):
            pass
        with tracer.span("kept"):
            pass
        table = tracer.summary_table()
        assert "kept" in table
        assert "span" in table.splitlines()[0]
        assert "1 oldest spans dropped" in table


class TestDefaultTracer:
    def test_module_level_span_uses_the_installed_default(self):
        mine = Tracer()
        old = set_default_tracer(mine)
        try:
            with span("via.module", x=1):
                pass
            assert default_tracer() is mine
        finally:
            set_default_tracer(old)
        assert [r.name for r in mine.spans] == ["via.module"]
        assert default_tracer() is old
