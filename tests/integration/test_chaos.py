"""Chaos acceptance: fault storms end to end, with every invariant pinned.

The contract of the chaos-hardened serve tier, asserted against real
sockets and real processes:

* under any injected fault mix, every request either succeeds or raises
  a **typed** :class:`~repro.serve.client.ServeError` — never a bare
  socket error, never a hang;
* the schedule store ends every storm with **zero corrupt entries**
  (scrub-verified);
* the same seed reproduces the **identical fault sequence**;
* a SIGKILLed serving process is restarted by the supervisor and the
  fleet recovers; a deterministic crash loop exits nonzero instead of
  flapping forever.
"""

import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.faults import FaultPlan
from repro.serve.chaos import BackgroundProxy
from repro.serve.client import ServeError
from repro.serve.failover import FailoverClient
from repro.serve.server import BackgroundServer, ServeConfig
from repro.serve.supervisor import (
    CRASH_LOOP_EXIT_CODE,
    Supervisor,
    SupervisorConfig,
)
from repro.service.store import ScheduleStore

_SRC = Path(__file__).resolve().parents[2] / "src"


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{_SRC}:{env.get('PYTHONPATH', '')}"
    return env


_STORM_PLAN = FaultPlan(seed=13, proxy_refuse_rate=0.1,
                        proxy_reset_rate=0.1, proxy_truncate_rate=0.1,
                        proxy_delay_rate=0.1, proxy_delay_seconds=0.005)


def _storm(store_dir, seed=13):
    """One seeded fault storm; returns (fault_log, successes, failures)."""
    requests = [(12, 2, 0.5), (9, 3, 0.9), (16, 3, 0.5), (25, 4, 0.9)]
    ok, failed = 0, 0
    with BackgroundServer(ServeConfig(port=0, jobs=1),
                          store=ScheduleStore(store_dir)) as bs:
        with BackgroundProxy("127.0.0.1", bs.port,
                             plan=_STORM_PLAN) as bp:
            client = FailoverClient([(bp.host, bp.port)], retries=8,
                                    timeout=10.0, backoff_base=0.005,
                                    seed=seed, failure_threshold=4,
                                    breaker_reset_s=0.05)
            for i in range(24):
                n, d, duty = requests[i % len(requests)]
                try:
                    doc = client.plan(n, d, duty, include_schedule=False)
                    assert "request" in doc
                    ok += 1
                except ServeError as exc:
                    # The only acceptable failure: typed, with a code.
                    assert exc.code
                    failed += 1
            log = bp.fault_log
    return log, ok, failed


class TestFaultStorm:
    def test_every_request_succeeds_or_raises_typed_error(self, tmp_path):
        log, ok, failed = _storm(tmp_path / "cache")
        assert ok + failed == 24
        # The retry ladder should absorb nearly everything at a 40%
        # fault rate with 8 retries; require a healthy majority so a
        # silently-broken retry path cannot pass.
        assert ok >= 20
        assert any(kind != "ok" for _i, kind in log)

    def test_store_ends_with_zero_corrupt_entries(self, tmp_path):
        _storm(tmp_path / "cache")
        store = ScheduleStore(tmp_path / "cache")
        report = store.scrub()
        assert report.clean
        assert report.scanned > 0  # the storm did write entries
        assert report.quarantined == 0

    def test_same_seed_reproduces_the_fault_sequence(self, tmp_path):
        log_a, _ok, _failed = _storm(tmp_path / "a")
        log_b, _ok2, _failed2 = _storm(tmp_path / "b")
        assert log_a == log_b


class TestSupervisedRecovery:
    def test_sigkill_mid_load_recovers_and_store_stays_clean(self, tmp_path):
        """The full drill: supervised real server, kill -9, keep calling."""
        port = _free_port()
        ready = tmp_path / "ready.txt"
        pid_file = tmp_path / "pid.txt"
        cache = tmp_path / "cache"
        sup = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--supervise",
             "--port", str(port), "--jobs", "1",
             "--ready-file", str(ready), "--pid-file", str(pid_file),
             "--cache-dir", str(cache),
             "--restart-backoff-base", "0.05"],
            env=_env(), stderr=subprocess.PIPE, text=True)
        try:
            self._wait_ready(sup, ready)
            client = FailoverClient([("127.0.0.1", port)], retries=12,
                                    timeout=10.0, backoff_base=0.05,
                                    breaker_reset_s=0.2)
            assert client.health()["ok"] is True
            client.plan(12, 2, 0.5, include_schedule=False)

            first_pid = int(pid_file.read_text())
            os.kill(first_pid, signal.SIGKILL)

            # Through the outage every call must stay typed; the fleet
            # must recover within the retry ladder.
            recovered = False
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                try:
                    doc = client.plan(9, 3, 0.9, include_schedule=False)
                    assert "request" in doc
                    recovered = True
                    break
                except ServeError as exc:
                    assert exc.code  # typed, never a bare socket error
            assert recovered, "fleet never recovered after the kill"
            assert int(pid_file.read_text()) != first_pid

            sup.send_signal(signal.SIGTERM)
            assert sup.wait(timeout=30) == 0
        finally:
            if sup.poll() is None:
                sup.kill()
                sup.wait()

        report = ScheduleStore(cache).scrub()
        assert report.clean
        assert report.scanned > 0

    @staticmethod
    def _wait_ready(proc, ready, timeout=30):
        deadline = time.monotonic() + timeout
        while not ready.exists():
            assert proc.poll() is None, proc.stderr.read()
            assert time.monotonic() < deadline, "server never became ready"
            time.sleep(0.05)


class TestCrashLoop:
    def test_deterministically_broken_child_exits_nonzero(self):
        config = SupervisorConfig(max_restarts=2, restart_window_s=60.0,
                                  backoff_base_s=0.01, backoff_cap_s=0.01)
        sup = Supervisor([sys.executable, "-c", "import sys; sys.exit(1)"],
                         config=config)
        assert sup.run() == CRASH_LOOP_EXIT_CODE
        starts = [d for kind, d in sup.events if kind == "start"]
        assert len(starts) == 3  # initial + the 2 tolerated restarts

    def test_restart_timeline_is_seeded(self):
        config = SupervisorConfig(seed=21, max_restarts=3,
                                  backoff_base_s=0.01)
        a = Supervisor(["x"], config=config)
        b = Supervisor(["x"], config=config)
        assert [a.backoff_delay(k) for k in (1, 2, 3)] \
            == [b.backoff_delay(k) for k in (1, 2, 3)]


class TestSupervisedCLI:
    def test_crash_loop_via_cli_exits_nonzero(self, tmp_path):
        """--supervise with an unbindable port crashes every child."""
        # Occupy a port, then supervise a server told to bind it.
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            sock.listen(1)
            port = sock.getsockname()[1]
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "serve", "--supervise",
                 "--port", str(port), "--no-cache",
                 "--max-restarts", "1", "--restart-backoff-base", "0.01"],
                env=_env(), capture_output=True, text=True, timeout=60)
        assert proc.returncode == CRASH_LOOP_EXIT_CODE
        assert "crash loop" in proc.stderr


@pytest.mark.slow
class TestLongStorm:
    def test_hundred_request_storm(self, tmp_path):
        """A longer soak for the slow tier; same invariants."""
        plan = FaultPlan(seed=5, proxy_refuse_rate=0.15,
                         proxy_reset_rate=0.15, proxy_truncate_rate=0.1)
        ok = 0
        with BackgroundServer(ServeConfig(port=0, jobs=1),
                              store=ScheduleStore(tmp_path / "c")) as bs:
            with BackgroundProxy("127.0.0.1", bs.port, plan=plan) as bp:
                client = FailoverClient([(bp.host, bp.port)], retries=10,
                                        timeout=10.0, backoff_base=0.002,
                                        failure_threshold=5,
                                        breaker_reset_s=0.02)
                for i in range(100):
                    try:
                        client.plan(12 + (i % 3), 2, 0.9,
                                    include_schedule=False)
                        ok += 1
                    except ServeError as exc:
                        assert exc.code
        assert ok >= 90
        assert ScheduleStore(tmp_path / "c").scrub().clean
