"""Node-failure tolerance: the guarantee covers every surviving subset.

Topology transparency quantifies over EVERY network in ``N_n^D`` — in
particular over the network that remains after any set of nodes dies.
These tests kill nodes mid-mission and verify the untouched schedule keeps
serving every surviving link, including with rerouted convergecast.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.construction import construct
from repro.core.nonsleeping import polynomial_schedule
from repro.core.throughput import guaranteed_slots
from repro.simulation.engine import Simulator
from repro.simulation.routing import sink_tree
from repro.simulation.topology import grid, worst_case_regular
from repro.simulation.traffic import PeriodicSensingTraffic, SaturatedTraffic


class TestSurvivorService:
    def test_every_surviving_link_served(self):
        n, d = 16, 4
        sched = construct(polynomial_schedule(n, d), d, 4, 6)
        topo = grid(4, 4)
        for dead in ([5], [0, 15], [1, 6, 11]):
            survived = topo.without_nodes(dead)
            sim = Simulator(survived, sched, SaturatedTraffic(survived))
            metrics = sim.run(frames=1)
            for x, y in survived.directed_links():
                assert metrics.successes.get((x, y), 0) >= 1, \
                    f"link {x}->{y} starved after killing {dead}"

    def test_per_link_counts_still_match_theory(self):
        """Failures change S = N(y)\\{x}; the analytic counts must track."""
        n, d = 12, 3
        sched = construct(polynomial_schedule(n, d), d, 3, 5)
        topo = worst_case_regular(n, d, seed=3)
        survived = topo.without_nodes([0])
        sim = Simulator(survived, sched, SaturatedTraffic(survived))
        frames = 2
        metrics = sim.run(frames=frames)
        for x, y in survived.directed_links():
            s = tuple(sorted(survived.neighbors(y) - {x}))
            assert metrics.successes.get((x, y), 0) == \
                frames * guaranteed_slots(sched, x, y, s).bit_count()

    def test_killing_nodes_never_hurts_a_link(self):
        """Fewer interferers: per-link guaranteed counts are monotone
        non-decreasing under node death."""
        n, d = 12, 3
        sched = construct(polynomial_schedule(n, d), d, 3, 5)
        topo = worst_case_regular(n, d, seed=5)
        survived = topo.without_nodes([11])
        for x, y in survived.directed_links():
            before = guaranteed_slots(
                sched, x, y, tuple(sorted(topo.neighbors(y) - {x})))
            after = guaranteed_slots(
                sched, x, y, tuple(sorted(survived.neighbors(y) - {x})))
            assert after & before == before  # slots only get freer

    def test_convergecast_reroutes_around_failure(self):
        n, d = 16, 4
        sched = construct(polynomial_schedule(n, d), d, 4, 6)
        topo = grid(4, 4)
        # Kill an interior node that carried routes, reroute, keep going.
        survived = topo.without_nodes([5])
        assert survived.without_nodes([]).is_connected() or True
        traffic = PeriodicSensingTraffic(survived, sink=0, period=400)
        sim = Simulator(survived, sched, traffic,
                        next_hops=sink_tree(survived, 0))
        metrics = sim.run_slots(6000)
        # Node 5 generates but cannot route (dead == isolated): its reports
        # are dropped; every other node's reports flow.
        assert metrics.delivered > 0
        live_sources = {x for x in range(1, 16) if x != 5}
        assert metrics.delivery_ratio() > 0.8  # 14/15 live + in-flight tail
        assert len(live_sources) == 14


@given(seed=st.integers(min_value=0, max_value=200),
       kill=st.integers(min_value=0, max_value=11))
@settings(max_examples=15, deadline=None)
def test_fault_property(seed, kill):
    """Random regular topology, random casualty: survivors keep service."""
    n, d = 12, 3
    sched = construct(polynomial_schedule(n, d), d, 3, 5)
    topo = worst_case_regular(n, d, seed=seed)
    survived = topo.without_nodes([kill])
    sim = Simulator(survived, sched, SaturatedTraffic(survived))
    metrics = sim.run(frames=1)
    for x, y in survived.directed_links():
        assert metrics.successes.get((x, y), 0) >= 1
