"""Monotonicity properties implied by the paper's definitions.

The network classes nest — ``N_n'^{D'} ⊆ N_n^D`` when ``n' <= n`` and
``D' <= D`` — so transparency must be monotone under shrinking the class,
and the throughput bounds must move the right way.  These are consequences
the paper never states but any correct implementation must satisfy; they
make strong cross-module property tests.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nonsleeping import polynomial_schedule, tdma_schedule
from repro.core.throughput import (
    constrained_upper_bound,
    general_upper_bound,
    min_throughput,
)
from repro.core.transparency import is_topology_transparent
from tests.conftest import random_schedule_strategy


@given(sched=random_schedule_strategy(max_n=6, max_len=6),
       d=st.integers(min_value=2, max_value=4))
@settings(max_examples=40, deadline=None)
def test_transparency_monotone_in_degree(sched, d):
    """TT for N_n^D implies TT for N_n^{D'} with D' <= D: fewer interferers
    can only help."""
    if d > sched.n - 1:
        return
    if is_topology_transparent(sched, d):
        for d_smaller in range(2, d):
            assert is_topology_transparent(sched, d_smaller)


@given(sched=random_schedule_strategy(max_n=7, max_len=6),
       d=st.integers(min_value=2, max_value=3),
       n_prime=st.integers(min_value=4, max_value=7))
@settings(max_examples=40, deadline=None)
def test_transparency_survives_node_restriction(sched, d, n_prime):
    """A TT schedule restricted to the first n' node ids stays TT for the
    shrunken class (the quantified sets only get smaller)."""
    if d > sched.n - 1 or n_prime >= sched.n or d > n_prime - 1:
        return
    if is_topology_transparent(sched, d):
        assert is_topology_transparent(sched.restricted_to(n_prime), d)


@given(sched=random_schedule_strategy(max_n=6, max_len=6),
       d=st.integers(min_value=2, max_value=4))
@settings(max_examples=40, deadline=None)
def test_min_throughput_antitone_in_degree(sched, d):
    """More possible interferers can only lower the guaranteed minimum."""
    if d > sched.n - 1:
        return
    values = [min_throughput(sched, dd) for dd in range(2, d + 1)]
    assert values == sorted(values, reverse=True)


def test_general_bound_antitone_in_degree():
    """Theorem 3's optimum decreases as the degree bound grows."""
    for n in (10, 25, 60):
        values = [general_upper_bound(n, d) for d in range(2, 7)]
        assert values == sorted(values, reverse=True)


def test_constrained_bound_monotone_in_budgets():
    """Theorem 4's bound never decreases when either budget grows."""
    n, d = 20, 3
    for ar in (2, 5, 9):
        values = [constrained_upper_bound(n, d, at, ar) for at in range(1, 10)]
        assert values == sorted(values)
    for at in (1, 3, 6):
        values = [constrained_upper_bound(n, d, at, ar) for ar in range(1, 12)]
        assert values == sorted(values)


def test_substrate_degree_headroom():
    """A family built for degree D serves every smaller degree too."""
    sched = polynomial_schedule(16, 3)
    for d in (2, 3):
        assert is_topology_transparent(sched, d)
    assert is_topology_transparent(tdma_schedule(8), 7)
