"""End-to-end pipeline: substrate -> transparency -> construction -> simulation.

Each scenario runs the full paper pipeline for one parameter point and
checks every theorem's claim along the way — the library-level contract a
downstream user relies on.
"""

import pytest

from repro import (
    average_throughput,
    constrained_upper_bound,
    construct,
    is_topology_transparent,
    min_throughput,
    optimal_transmitters_constrained,
    thm8_ratio_lower_bound,
    thm9_min_throughput_bound,
)
from repro.core.construction import construct_detailed, frame_length_formula
from repro.core.nonsleeping import (
    best_nonsleeping_schedule,
    polynomial_schedule,
    steiner_schedule,
    tdma_schedule,
)
from repro.core.throughput import guaranteed_slots
from repro.simulation.engine import Simulator
from repro.simulation.topology import random_capped, worst_case_regular
from repro.simulation.traffic import SaturatedTraffic

import numpy as np

SCENARIOS = [
    # (n, D, alpha_t, alpha_r, source factory)
    (9, 2, 2, 3, lambda n, d: polynomial_schedule(n, d)),
    (12, 2, 3, 4, lambda n, d: steiner_schedule(n, d)),
    (10, 3, 2, 4, lambda n, d: tdma_schedule(n)),
    (13, 3, 3, 6, lambda n, d: best_nonsleeping_schedule(n, d)[1]),
]


@pytest.mark.parametrize("n,d,at,ar,factory", SCENARIOS)
class TestFullPipeline:
    def test_pipeline_guarantees(self, n, d, at, ar, factory):
        source = factory(n, d)
        # The substrate really is a TT non-sleeping schedule.
        assert source.is_non_sleeping()
        assert is_topology_transparent(source, d)

        res = construct_detailed(source, d, at, ar)
        built = res.schedule

        # Theorem 6: correctness.
        assert built.is_alpha_schedule(at, ar)
        assert is_topology_transparent(built, d)

        # Theorem 7: frame length, exactly.
        exact, bound = frame_length_formula(source, res.alpha_t_star, ar)
        assert built.frame_length == exact <= bound

        # Theorem 8: throughput ratio at least the bound; equality when
        # the source is thick enough.
        ratio = average_throughput(built, d) / constrained_upper_bound(
            n, d, at, ar)
        lower = thm8_ratio_lower_bound(source, d, at, ar)
        assert ratio >= lower
        if min(source.tx_counts) >= optimal_transmitters_constrained(n, d, at):
            assert ratio == 1

        # Theorem 9: minimum throughput bound, and transparency shows up
        # as a positive minimum.
        built_min = min_throughput(built, d)
        assert built_min >= thm9_min_throughput_bound(
            source, d, at, ar, constructed_length=built.frame_length)
        assert built_min > 0

    def test_simulation_agrees_with_analysis(self, n, d, at, ar, factory):
        source = factory(n, d)
        built = construct(source, d, at, ar)
        if (n * d) % 2 == 0:
            topo = worst_case_regular(n, d, seed=n * d)
        else:
            topo = random_capped(n, d, p=0.6, rng=np.random.default_rng(n))
        sim = Simulator(topo, built, SaturatedTraffic(topo))
        metrics = sim.run(frames=1)
        for x, y in topo.directed_links():
            s = tuple(sorted(topo.neighbors(y) - {x}))
            assert metrics.successes.get((x, y), 0) == \
                guaranteed_slots(built, x, y, s).bit_count()

    def test_every_link_served_within_a_frame(self, n, d, at, ar, factory):
        """The user-facing promise: on ANY in-class topology, every directed
        link sees at least one success per frame."""
        source = factory(n, d)
        built = construct(source, d, at, ar)
        rng = np.random.default_rng(17 + n)
        for trial in range(3):
            topo = random_capped(n, d, p=0.5, rng=rng)
            sim = Simulator(topo, built, SaturatedTraffic(topo))
            metrics = sim.run(frames=1)
            for x, y in topo.directed_links():
                assert metrics.successes.get((x, y), 0) >= 1, \
                    f"link {x}->{y} starved on trial {trial}"
