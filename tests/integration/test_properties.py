"""Cross-module property-based invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.combinatorics.coverfree import CoverFreeFamily
from repro.core.construction import construct_detailed
from repro.core.nonsleeping import from_cover_free_family, tdma_schedule
from repro.core.throughput import average_throughput, min_throughput
from repro.core.transparency import (
    is_topology_transparent,
    satisfies_requirement1,
)
from tests.conftest import random_schedule_strategy


@st.composite
def cover_free_family_strategy(draw):
    """Random small families with nonempty blocks."""
    ground = draw(st.integers(min_value=3, max_value=8))
    size = draw(st.integers(min_value=3, max_value=6))
    blocks = tuple(
        draw(st.integers(min_value=1, max_value=(1 << ground) - 1))
        for _ in range(size)
    )
    return CoverFreeFamily(ground, blocks)


@given(fam=cover_free_family_strategy(),
       d=st.integers(min_value=2, max_value=4))
@settings(max_examples=50, deadline=None)
def test_cff_strength_iff_requirement1(fam, d):
    """The paper's bridge: D-cover-freeness of tran sets == Requirement 1."""
    if d > fam.size - 1:
        return
    sched = from_cover_free_family(fam, fam.size)
    assert satisfies_requirement1(sched, d) == fam.is_d_cover_free(d)


@given(fam=cover_free_family_strategy(),
       d=st.integers(min_value=2, max_value=3))
@settings(max_examples=40, deadline=None)
def test_non_sleeping_requirement1_equals_full_transparency(fam, d):
    """For non-sleeping schedules condition (2) of Requirement 3 is free:
    every non-transmitter listens, so Requirement 1 decides transparency."""
    if d > fam.size - 1:
        return
    sched = from_cover_free_family(fam, fam.size)
    assert is_topology_transparent(sched, d) == \
        satisfies_requirement1(sched, d)


@given(sched=random_schedule_strategy(max_n=6, max_len=6),
       d=st.integers(min_value=2, max_value=4))
@settings(max_examples=40, deadline=None)
def test_transparency_iff_positive_min_throughput(sched, d):
    """Section 5's characterization, across random schedules."""
    if d > sched.n - 1:
        return
    assert (min_throughput(sched, d) > 0) == is_topology_transparent(sched, d)


@given(n=st.integers(min_value=5, max_value=9),
       d=st.integers(min_value=2, max_value=3),
       at=st.integers(min_value=1, max_value=3),
       ar=st.integers(min_value=1, max_value=4),
       balanced=st.booleans())
@settings(max_examples=30, deadline=None)
def test_construction_always_preserves_transparency(n, d, at, ar, balanced):
    """Theorem 6 as a property over the parameter space (TDMA source)."""
    if d > n - 1 or at + ar > n:
        return
    source = tdma_schedule(n)
    res = construct_detailed(source, d, at, ar, balanced=balanced)
    assert res.schedule.is_alpha_schedule(at, ar)
    assert is_topology_transparent(res.schedule, d)


@given(n=st.integers(min_value=5, max_value=8),
       d=st.integers(min_value=2, max_value=3),
       at=st.integers(min_value=1, max_value=3),
       ar=st.integers(min_value=2, max_value=4))
@settings(max_examples=30, deadline=None)
def test_division_strategy_does_not_change_average_throughput_ordering(
        n, d, at, ar):
    """Both divisions produce slots with identical (|T|, |R|) counts, so by
    Theorem 2 the average worst-case throughput — a per-slot average — is
    the same even when the balanced variant emits more slots.  This is the
    paper's division-invariance claim (after Figure 2) as a property."""
    if d > n - 1 or at + ar > n:
        return
    source = tdma_schedule(n)
    plain = construct_detailed(source, d, at, ar, balanced=False).schedule
    balanced = construct_detailed(source, d, at, ar, balanced=True).schedule
    assert average_throughput(plain, d) == average_throughput(balanced, d)
    # The balanced variant may only lengthen the frame, never shorten it.
    assert balanced.frame_length >= plain.frame_length


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_simulation_matches_analysis_on_random_topologies(seed):
    """E8 as a property: random in-class topology, exact per-link match."""
    from repro.core.throughput import guaranteed_slots
    from repro.simulation.engine import Simulator
    from repro.simulation.topology import random_capped
    from repro.simulation.traffic import SaturatedTraffic

    rng = np.random.default_rng(seed)
    n, d = 8, 2
    topo = random_capped(n, d, p=0.4, rng=rng)
    sched = tdma_schedule(n)
    sim = Simulator(topo, sched, SaturatedTraffic(topo))
    metrics = sim.run(frames=1)
    for x, y in topo.directed_links():
        s = tuple(sorted(topo.neighbors(y) - {x}))
        assert metrics.successes.get((x, y), 0) == \
            guaranteed_slots(sched, x, y, s).bit_count()
