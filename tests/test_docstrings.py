"""Documentation quality gate: every public item carries a docstring.

"Doc comments on every public item" is a deliverable, so it is enforced
mechanically: every module under ``repro``, every public class, function
and method (not prefixed with ``_``, not inherited from elsewhere) must
have a non-trivial docstring.
"""

import importlib
import inspect
import pkgutil

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        yield name, obj


def test_every_module_has_docstring():
    missing = [m.__name__ for m in _walk_modules() if not (m.__doc__ or "").strip()]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_function_and_class_has_docstring():
    missing = []
    for module in _walk_modules():
        for name, obj in _public_members(module):
            doc = (inspect.getdoc(obj) or "").strip()
            if len(doc) < 10:
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"public items without real docstrings: {missing}"


def test_public_methods_have_docstrings():
    missing = []
    for module in _walk_modules():
        for cls_name, cls in _public_members(module):
            if not inspect.isclass(cls):
                continue
            for meth_name, meth in vars(cls).items():
                if meth_name.startswith("_"):
                    continue
                func = meth
                if isinstance(meth, (classmethod, staticmethod)):
                    func = meth.__func__
                elif isinstance(meth, property):
                    func = meth.fget
                if not callable(func):
                    continue
                doc = (inspect.getdoc(func) or "").strip()
                if len(doc) < 5:
                    missing.append(f"{module.__name__}.{cls_name}.{meth_name}")
    assert not missing, f"public methods without docstrings: {missing}"
