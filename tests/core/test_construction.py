"""The Figure 2 construction: correctness, frame length, throughput, balance."""

from fractions import Fraction
from math import ceil, gcd

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.construction import (
    balanced_chunks,
    construct,
    construct_detailed,
    construct_exact,
    contiguous_chunks,
    frame_length_formula,
)
from repro.core.nonsleeping import (
    polynomial_schedule,
    projective_plane_schedule,
    steiner_schedule,
    tdma_schedule,
)
from repro.core.schedule import Schedule
from repro.core.throughput import (
    average_throughput,
    constrained_upper_bound,
    min_throughput,
    optimal_transmitters_constrained,
    thm8_ratio_lower_bound,
    thm9_min_throughput_bound,
)
from repro.core.transparency import is_topology_transparent


class TestChunks:
    def test_contiguous_exact_division(self):
        assert contiguous_chunks([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_contiguous_overlapping_last(self):
        chunks = contiguous_chunks([1, 2, 3, 4, 5], 2)
        assert chunks == [[1, 2], [3, 4], [4, 5]]
        assert all(len(c) == 2 for c in chunks)
        assert set().union(*chunks) == {1, 2, 3, 4, 5}

    def test_contiguous_small_input(self):
        assert contiguous_chunks([7], 3) == [[7]]
        assert contiguous_chunks([], 3) == []

    @given(m=st.integers(min_value=1, max_value=20),
           size=st.integers(min_value=1, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_contiguous_figure2_line3_invariants(self, m, size):
        elems = list(range(m))
        chunks = contiguous_chunks(elems, size)
        eff = min(size, m)
        assert len(chunks) == ceil(m / eff)
        assert all(len(c) == eff for c in chunks)
        assert set().union(*chunks) == set(elems)

    def test_balanced_exact_division_matches_contiguous_count(self):
        assert len(balanced_chunks(list(range(6)), 3)) == 2

    @given(m=st.integers(min_value=1, max_value=18),
           size=st.integers(min_value=1, max_value=18))
    @settings(max_examples=60, deadline=None)
    def test_balanced_equal_membership(self, m, size):
        elems = list(range(m))
        chunks = balanced_chunks(elems, size)
        eff = min(size, m)
        assert len(chunks) == m // gcd(m, eff)
        counts = {e: 0 for e in elems}
        for c in chunks:
            assert len(c) == eff
            for e in c:
                counts[e] += 1
        values = set(counts.values())
        assert len(values) == 1  # every element in the same number of chunks
        assert values.pop() == eff // gcd(m, eff)


FAMILIES = [
    ("tdma", lambda n, d: tdma_schedule(n)),
    ("polynomial", polynomial_schedule),
]


class TestCorrectness:
    """Lemma 5 / Theorem 6: transparency is preserved, caps hold."""

    @pytest.mark.parametrize("name,factory", FAMILIES)
    @pytest.mark.parametrize("balanced", [False, True])
    def test_transparency_preserved(self, name, factory, balanced):
        n, d, at, ar = 9, 2, 2, 4
        source = factory(n, d)
        assert is_topology_transparent(source, d)
        built = construct(source, d, at, ar, balanced=balanced)
        assert built.is_alpha_schedule(at, ar)
        assert is_topology_transparent(built, d)

    def test_steiner_source(self):
        n, d, at, ar = 12, 2, 3, 4
        built = construct(steiner_schedule(n, d), d, at, ar)
        assert built.is_alpha_schedule(at, ar)
        assert is_topology_transparent(built, d)

    def test_projective_source(self):
        n, d, at, ar = 12, 3, 3, 4
        built = construct(projective_plane_schedule(n, d), d, at, ar)
        assert built.is_alpha_schedule(at, ar)
        assert is_topology_transparent(built, d)

    def test_receivers_exactly_alpha_r(self):
        """Line 8 pads every constructed slot to exactly alpha_R receivers."""
        res = construct_detailed(polynomial_schedule(9, 2, q=3, k=1), 2, 2, 4)
        assert all(c == 4 for c in res.schedule.rx_counts)

    def test_tx_rx_disjoint_after_padding(self):
        built = construct(tdma_schedule(10), 2, 3, 6)
        for t, r in zip(built.tx, built.rx):
            assert t & r == 0

    def test_requires_non_sleeping_source(self):
        sleeping = Schedule.from_sets(5, [[0]], [[1]])
        with pytest.raises(ValueError, match="non-sleeping"):
            construct(sleeping, 2, 1, 2)

    def test_budget_exceeds_n_rejected(self):
        with pytest.raises(ValueError, match="alpha_T \\+ alpha_R"):
            construct(tdma_schedule(5), 2, 3, 3)


class TestConstructExact:
    def test_exact_counts(self):
        """Remark after Theorem 6: exactly alpha_T' and alpha_R' per slot."""
        source = polynomial_schedule(25, 3)  # every |T[i]| = 5
        built = construct_exact(source, 2, 6)
        assert all(c == 2 for c in built.tx_counts)
        assert all(c == 6 for c in built.rx_counts)
        assert is_topology_transparent(built, 3)

    def test_no_optimization_applied(self):
        source = polynomial_schedule(25, 3)
        # construct() would cap alpha_T at alpha_T*; construct_exact must not.
        built = construct_exact(source, 5, 6)
        assert all(c == 5 for c in built.tx_counts)


class TestTheorem7:
    @pytest.mark.parametrize("name,factory", FAMILIES)
    def test_frame_length_formula_exact(self, name, factory):
        n, d, at, ar = 10, 2, 2, 4
        source = factory(n, d)
        res = construct_detailed(source, d, at, ar)
        exact, bound = frame_length_formula(source, res.alpha_t_star, ar)
        assert res.schedule.frame_length == exact
        assert exact <= bound

    def test_formula_components(self):
        source = tdma_schedule(8)  # |T[i]| = 1 everywhere
        res = construct_detailed(source, 2, 2, 3)
        # k_T = ceil(1/aT*) = 1, k_R = ceil(7/3) = 3, L = 8 -> 24 entries.
        assert res.schedule.frame_length == 8 * 3

    @pytest.mark.parametrize("balanced", [False, True])
    def test_formula_tracks_balanced_mode(self, balanced):
        source = polynomial_schedule(25, 3)
        res = construct_detailed(source, 3, 3, 10, balanced=balanced)
        exact, _ = frame_length_formula(source, res.alpha_t_star, 10,
                                        balanced=balanced)
        assert res.schedule.frame_length == exact

    def test_slot_origin_partition(self):
        source = tdma_schedule(6)
        res = construct_detailed(source, 2, 2, 2)
        assert len(res.slot_origin) == res.schedule.frame_length
        # Origins are non-decreasing and cover every source slot.
        assert list(res.slot_origin) == sorted(res.slot_origin)
        assert set(res.slot_origin) == set(range(source.frame_length))


class TestTheorem8:
    def test_optimal_when_source_thick_enough(self):
        """min |T[i]| >= alpha_T* -> the construction attains Theorem 4."""
        n, d, at, ar = 25, 3, 4, 6
        source = polynomial_schedule(n, d)
        assert min(source.tx_counts) >= \
            optimal_transmitters_constrained(n, d, at)
        built = construct(source, d, at, ar)
        assert average_throughput(built, d) == \
            constrained_upper_bound(n, d, at, ar)
        assert thm8_ratio_lower_bound(source, d, at, ar) == 1

    def test_bound_holds_for_thin_source(self):
        n, d, at, ar = 12, 2, 3, 4
        source = tdma_schedule(n)  # every |T[i]| = 1 < alpha_T*
        built = construct(source, d, at, ar)
        ratio = Fraction(average_throughput(built, d),
                         constrained_upper_bound(n, d, at, ar))
        bound = thm8_ratio_lower_bound(source, d, at, ar)
        assert 0 < bound <= ratio < 1

    @pytest.mark.parametrize("balanced", [False, True])
    def test_division_invariance_of_average_throughput(self, balanced):
        """The paper: the division choice does not change Thr_ave when the
        source is uniform (all chunks hit size alpha_T* either way)."""
        n, d, at, ar = 25, 3, 4, 10
        source = polynomial_schedule(n, d)
        built = construct(source, d, at, ar, balanced=balanced)
        assert average_throughput(built, d) == \
            constrained_upper_bound(n, d, at, ar)


class TestTheorem9:
    @pytest.mark.parametrize("name,factory", FAMILIES)
    def test_min_throughput_bounds(self, name, factory):
        n, d, at, ar = 9, 2, 2, 4
        source = factory(n, d)
        res = construct_detailed(source, d, at, ar)
        built_min = min_throughput(res.schedule, d)
        sharp = thm9_min_throughput_bound(
            source, d, at, ar, constructed_length=res.schedule.frame_length)
        closed = thm9_min_throughput_bound(source, d, at, ar)
        assert built_min >= sharp
        assert built_min >= closed

    def test_slot_count_preserved_per_link(self):
        """The Theorem 9 proof's core: per-(x,y,S) guaranteed-slot COUNTS
        never decrease from source to constructed schedule."""
        from itertools import combinations

        from repro.core.throughput import guaranteed_slots

        n, d, at, ar = 7, 2, 2, 3
        source = tdma_schedule(n)
        built = construct(source, d, at, ar)
        for x in range(n):
            for y in range(n):
                if x == y:
                    continue
                others = [z for z in range(n) if z not in (x, y)]
                for s in combinations(others, d - 1):
                    assert guaranteed_slots(built, x, y, s).bit_count() >= \
                        guaranteed_slots(source, x, y, s).bit_count()


class TestBalancedVariant:
    def test_transmit_share_equal_for_uniform_source(self):
        n, d, at, ar = 25, 4, 3, 10
        source = polynomial_schedule(n, d)
        built = construct(source, d, at, ar, balanced=True)
        shares = {built.transmit_share(x) for x in range(n)}
        assert len(shares) == 1

    def test_plain_can_be_unequal(self):
        n, d, at, ar = 25, 4, 3, 10
        source = polynomial_schedule(n, d)
        built = construct(source, d, at, ar, balanced=False)
        shares = {built.transmit_share(x) for x in range(n)}
        assert len(shares) > 1  # the overlapping last chunk favours someone

    def test_balanced_costs_frame_length(self):
        n, d, at, ar = 25, 4, 3, 10
        source = polynomial_schedule(n, d)
        plain = construct(source, d, at, ar, balanced=False)
        balanced = construct(source, d, at, ar, balanced=True)
        assert balanced.frame_length >= plain.frame_length
