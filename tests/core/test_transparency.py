"""Topology-transparency requirements: definitions, equivalence, checkers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nonsleeping import tdma_schedule
from repro.core.schedule import Schedule
from repro.core.transparency import (
    find_transparency_violation,
    free_slots,
    is_topology_transparent,
    satisfies_requirement1,
    satisfies_requirement2,
    satisfies_requirement3,
    sigma,
)
from tests.conftest import random_schedule_strategy, schedule_with_degree_strategy


class TestPrimitives:
    def test_free_slots_definition(self):
        s = Schedule.non_sleeping(4, [[0, 1], [0], [2]])
        # tran(0) = {0, 1}; subtracting tran(1) = {0} leaves slot 1.
        assert free_slots(s, 0, [1]) == 0b010
        assert free_slots(s, 0, [2]) == 0b011
        assert free_slots(s, 0, [1, 2]) == 0b010

    def test_free_slots_empty_y(self):
        s = Schedule.non_sleeping(3, [[0], [1]])
        assert free_slots(s, 0, []) == s.tran_mask(0)

    def test_sigma_definition(self):
        s = Schedule.from_sets(3, [[0], [1]], [[1], [0, 2]])
        assert sigma(s, 0, 1) == 0b01
        assert sigma(s, 1, 0) == 0b10
        assert sigma(s, 1, 2) == 0b10
        assert sigma(s, 0, 2) == 0

    def test_sigma_never_self_slot(self):
        # sigma(a, b) excludes slots where b transmits (tx/rx disjoint).
        s = Schedule.non_sleeping(3, [[0, 1], [2]])
        assert sigma(s, 0, 1) == 0  # slot 0 has node 1 transmitting


class TestRequirement1:
    def test_tdma_satisfies(self):
        s = tdma_schedule(5)
        for d in range(2, 5):
            assert satisfies_requirement1(s, d)

    def test_silent_node_fails(self):
        s = Schedule.non_sleeping(4, [[0], [1], [2]])  # node 3 never transmits
        assert not satisfies_requirement1(s, 2)

    def test_covered_node_fails(self):
        # Node 0 transmits only where 1 or 2 also transmit.
        s = Schedule.non_sleeping(4, [[0, 1], [0, 2], [3]])
        assert not satisfies_requirement1(s, 2)
        assert satisfies_requirement1(s, 2) == satisfies_requirement3(s, 2)


class TestRequirementEquivalence:
    """Theorem 1: Requirement 2 <=> Requirement 3."""

    @given(pair=schedule_with_degree_strategy(max_n=6, max_len=7))
    @settings(max_examples=60, deadline=None)
    def test_req2_iff_req3(self, pair):
        sched, d = pair
        assert satisfies_requirement2(sched, d) == \
            satisfies_requirement3(sched, d)

    def test_known_positive(self):
        s = tdma_schedule(5)
        assert satisfies_requirement2(s, 3)
        assert satisfies_requirement3(s, 3)

    def test_known_negative(self):
        # A schedule where some node never receives cannot satisfy (2).
        s = Schedule.from_sets(4, [[0], [1], [2], [3]],
                               [[1], [2], [3], [1]])  # node 0 never receives
        assert not satisfies_requirement2(s, 2)
        assert not satisfies_requirement3(s, 2)


class TestExactChecker:
    @given(pair=schedule_with_degree_strategy(max_n=6, max_len=7))
    @settings(max_examples=60, deadline=None)
    def test_exact_matches_definitional(self, pair):
        sched, d = pair
        assert is_topology_transparent(sched, d) == \
            satisfies_requirement2(sched, d)

    def test_tdma_transparent_all_degrees(self):
        s = tdma_schedule(6)
        for d in range(2, 6):
            assert is_topology_transparent(s, d)

    def test_duty_cycled_positive(self):
        # TDMA with only a couple of receivers per slot is still TT for
        # small D when every potential neighbour keeps a free listen slot.
        n = 4
        tx = [[i] for i in range(n)]
        rx = [sorted(set(range(n)) - {i}) for i in range(n)]
        s = Schedule.from_sets(n, tx, rx)
        assert is_topology_transparent(s, 2)

    def test_bad_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            is_topology_transparent(tdma_schedule(4), 2, method="magic")

    def test_class_params_validated(self):
        with pytest.raises(ValueError):
            is_topology_transparent(tdma_schedule(4), 1)
        with pytest.raises(ValueError):
            is_topology_transparent(tdma_schedule(4), 4)


class TestSampledChecker:
    @given(pair=schedule_with_degree_strategy(max_n=6, max_len=6))
    @settings(max_examples=30, deadline=None)
    def test_sampled_true_when_exact_true(self, pair):
        """The refuter has no false positives: violations it reports are real,
        so a truly transparent schedule always passes."""
        sched, d = pair
        if is_topology_transparent(sched, d):
            assert is_topology_transparent(
                sched, d, method="sampled", samples=200,
                rng=np.random.default_rng(0))

    def test_sampled_finds_blatant_violation(self):
        s = Schedule.from_sets(4, [[0], [1], [2], [3]],
                               [[1], [2], [3], [1]])
        assert not is_topology_transparent(
            s, 2, method="sampled", samples=500, rng=np.random.default_rng(1))


class TestViolationWitness:
    def test_witness_is_valid(self):
        s = Schedule.non_sleeping(4, [[0, 1], [0, 2], [3]])
        witness = find_transparency_violation(s, 2)
        assert witness is not None
        x, y, interferers = witness
        target = sigma(s, x, y)
        union = 0
        for z in interferers:
            union |= sigma(s, z, y)
        assert target & ~union == 0  # genuinely covered

    def test_no_witness_for_transparent(self):
        assert find_transparency_violation(tdma_schedule(5), 3) is None

    @given(pair=schedule_with_degree_strategy(max_n=5, max_len=6))
    @settings(max_examples=30, deadline=None)
    def test_witness_iff_not_transparent(self, pair):
        sched, d = pair
        witness = find_transparency_violation(sched, d)
        assert (witness is None) == is_topology_transparent(sched, d)


@given(sched=random_schedule_strategy(max_n=6, max_len=6),
       d=st.integers(min_value=2, max_value=4))
@settings(max_examples=40, deadline=None)
def test_requirement3_condition2_implies_condition1(sched, d):
    """The paper notes condition (2) implies condition (1): if every y_k has
    a free listen slot then free slots exist at all.  Check via the full
    requirement implying Requirement 1 on <T>."""
    if d > sched.n - 1:
        return
    if satisfies_requirement3(sched, d):
        assert satisfies_requirement1(sched, d)
