"""Worst-case throughput theory: Definitions 1-2, Theorems 2-4, g, r."""

from fractions import Fraction
from itertools import combinations
from math import ceil, comb, floor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nonsleeping import polynomial_schedule, tdma_schedule
from repro.core.schedule import Schedule
from repro.core.throughput import (
    average_throughput,
    average_throughput_bruteforce,
    constrained_upper_bound,
    g,
    g_upper_bound,
    general_upper_bound,
    guaranteed_slots,
    min_throughput,
    optimal_transmitters_constrained,
    optimal_transmitters_general,
    r_ratio,
)
from repro.core.transparency import is_topology_transparent
from tests.conftest import random_schedule_strategy, schedule_with_degree_strategy


def brute_min_throughput(sched: Schedule, d: int) -> Fraction:
    """Definition 1 by full enumeration (test oracle)."""
    n = sched.n
    best = None
    for x in range(n):
        for y in range(n):
            if y == x:
                continue
            others = [z for z in range(n) if z != x and z != y]
            for s in combinations(others, d - 1):
                v = guaranteed_slots(sched, x, y, s).bit_count()
                if best is None or v < best:
                    best = v
    return Fraction(best, sched.frame_length)


class TestGuaranteedSlots:
    def test_definition(self):
        s = tdma_schedule(4)
        # x=0 transmits only in slot 0; y=1 listens there; interferers
        # never transmit in slot 0.
        assert guaranteed_slots(s, 0, 1, (2,)) == 0b0001
        assert guaranteed_slots(s, 0, 1, (2, 3)) == 0b0001

    def test_monotone_in_s(self):
        s = polynomial_schedule(9, 2, q=3, k=1)
        a = guaranteed_slots(s, 0, 1, (2,))
        b = guaranteed_slots(s, 0, 1, (2, 3))
        assert a & b == b  # larger S can only remove slots


class TestTheorem2:
    @given(pair=schedule_with_degree_strategy(max_n=7, max_len=6))
    @settings(max_examples=60, deadline=None)
    def test_closed_form_equals_definition(self, pair):
        sched, d = pair
        assert average_throughput(sched, d) == \
            average_throughput_bruteforce(sched, d)

    def test_depends_only_on_counts(self):
        """Permuting WHO transmits leaves the average unchanged."""
        s1 = Schedule.non_sleeping(5, [[0, 1], [2]])
        s2 = Schedule.non_sleeping(5, [[3, 4], [0]])
        assert average_throughput(s1, 2) == average_throughput(s2, 2)

    def test_tdma_value(self):
        # TDMA: every slot has 1 transmitter, n-1 receivers.
        # Thr = n * 1 * (n-1) * C(n-2, D-1) / (n (n-1) C(n-2,D-1) n) = 1/n.
        for n, d in [(5, 2), (6, 3), (8, 4)]:
            assert average_throughput(tdma_schedule(n), d) == Fraction(1, n)

    def test_empty_slot_contributes_zero(self):
        s = Schedule.from_sets(4, [[0], []], [[1], [1]])
        s_single = Schedule.from_sets(4, [[0]], [[1]])
        # The empty slot halves the average (same F, doubled L).
        assert average_throughput(s, 2) == average_throughput(s_single, 2) / 2


class TestMinThroughput:
    @given(pair=schedule_with_degree_strategy(max_n=6, max_len=6))
    @settings(max_examples=40, deadline=None)
    def test_exact_matches_bruteforce(self, pair):
        sched, d = pair
        assert min_throughput(sched, d) == brute_min_throughput(sched, d)

    def test_positive_iff_transparent(self):
        """Section 5: Thr_min > 0 <=> the schedule is topology-transparent."""
        cases = [
            tdma_schedule(5),
            Schedule.non_sleeping(5, [[0, 1], [2], [3]]),   # 4 never transmits
            Schedule.from_sets(5, [[0], [1], [2], [3], [4]],
                               [[1], [0], [0], [0], [0]]),
        ]
        for sched in cases:
            assert (min_throughput(sched, 2) > 0) == \
                is_topology_transparent(sched, 2)

    def test_tdma_value(self):
        assert min_throughput(tdma_schedule(6), 3) == Fraction(1, 6)

    def test_sampled_upper_bounds_exact(self, rng):
        sched = polynomial_schedule(9, 2, q=3, k=1)
        exact = min_throughput(sched, 2, exact=True)
        sampled = min_throughput(sched, 2, exact=False, samples=30, rng=rng)
        assert sampled >= exact

    def test_degree_bound_validated(self):
        with pytest.raises(ValueError):
            min_throughput(tdma_schedule(3), 3)  # D must be <= n - 1
        with pytest.raises(ValueError):
            min_throughput(tdma_schedule(5), 1)  # D must be >= 2


class TestG:
    @pytest.mark.parametrize("n,d", [(8, 2), (10, 3), (15, 4), (20, 6)])
    def test_property1_upper_bound(self, n, d):
        bound = g_upper_bound(n, d)
        for x in range(n):
            assert g(n, d, x) <= bound

    @pytest.mark.parametrize("n,d", [(8, 2), (10, 3), (15, 4), (20, 6), (9, 2)])
    def test_property2_maximizer_location(self, n, d):
        best = max(range(n), key=lambda x: (g(n, d, x), -x))
        fl = floor((n - d) / (d + 1))
        ce = ceil((n - d) / (d + 1))
        assert best in {fl, ce}

    def test_zero_at_extremes(self):
        assert g(10, 3, 0) == 0
        # x = n leaves no receivers: C(0, 3) = 0.
        assert g(10, 3, 10) == 0

    def test_interpretation(self):
        """g(n,D,x) is the average throughput of a non-sleeping schedule with
        x transmitters in every slot."""
        n, d, x = 7, 2, 2
        sched = Schedule.non_sleeping(n, [list(range(x))])
        assert average_throughput(sched, d) == g(n, d, x)


class TestTheorem3:
    @pytest.mark.parametrize("n,d", [(8, 2), (10, 3), (16, 4), (25, 3)])
    def test_alpha_star_maximizes_g(self, n, d):
        at = optimal_transmitters_general(n, d)
        assert g(n, d, at) == max(g(n, d, x) for x in range(n))

    @given(pair=schedule_with_degree_strategy(max_n=7, max_len=5))
    @settings(max_examples=40, deadline=None)
    def test_bound_dominates_all_schedules(self, pair):
        sched, d = pair
        assert average_throughput(sched, d) <= general_upper_bound(sched.n, d)

    @pytest.mark.parametrize("n,d", [(8, 2), (12, 3), (20, 4)])
    def test_attained_by_optimal_non_sleeping(self, n, d):
        at = optimal_transmitters_general(n, d)
        sched = Schedule.non_sleeping(n, [list(range(at))])
        assert average_throughput(sched, d) == general_upper_bound(n, d)

    @pytest.mark.parametrize("n,d", [(8, 2), (12, 3), (20, 4)])
    def test_loose_bound_dominates(self, n, d):
        assert general_upper_bound(n, d) <= g_upper_bound(n, d)

    def test_sleeping_schedule_strictly_below(self):
        """Only non-sleeping schedules with the optimal counts attain it."""
        n, d = 8, 2
        at = optimal_transmitters_general(n, d)
        # Same transmitters but one receiver short of the complement.
        sched = Schedule.from_sets(
            n, [list(range(at))], [list(range(at, n - 1))])
        assert average_throughput(sched, d) < general_upper_bound(n, d)


class TestTheorem4:
    @pytest.mark.parametrize("n,d,at", [(10, 2, 3), (15, 3, 2), (20, 4, 10)])
    def test_alpha_star_definition(self, n, d, at):
        star = optimal_transmitters_constrained(n, d, at)
        assert star <= at
        fl = floor((n - d) / d)
        ce = ceil((n - d) / d)
        assert star in {at, fl, ce}

    @given(pair=schedule_with_degree_strategy(max_n=7, max_len=5))
    @settings(max_examples=40, deadline=None)
    def test_bound_dominates_alpha_schedules(self, pair):
        sched, d = pair
        at = max(sched.tx_counts) or 1
        ar = max(sched.rx_counts) or 1
        assert average_throughput(sched, d) <= \
            constrained_upper_bound(sched.n, d, at, ar)

    @pytest.mark.parametrize("n,d,at,ar", [(10, 2, 3, 4), (12, 3, 2, 5)])
    def test_attained_by_exact_count_schedule(self, n, d, at, ar):
        star = optimal_transmitters_constrained(n, d, at)
        sched = Schedule.from_sets(
            n, [list(range(star))], [list(range(star, star + ar))])
        assert average_throughput(sched, d) == \
            constrained_upper_bound(n, d, at, ar)

    def test_monotone_in_alpha_r(self):
        n, d, at = 15, 3, 3
        values = [constrained_upper_bound(n, d, at, ar) for ar in range(1, 12)]
        assert values == sorted(values)
        # Exactly linear in alpha_R:
        assert values[5] == values[0] * 6

    def test_saturates_in_alpha_t(self):
        n, d = 15, 3
        big = constrained_upper_bound(n, d, 8, 4)
        bigger = constrained_upper_bound(n, d, 11, 4)
        assert big == bigger  # alpha beyond (n-D)/D stops helping


class TestRRatio:
    def test_unity_at_star(self):
        n, d = 20, 3
        star = optimal_transmitters_constrained(n, d, 4)
        assert r_ratio(n, d, star, star) == 1

    def test_matches_throughput_ratio(self):
        """r(x) == g-style per-slot contribution ratio at alpha_R receivers."""
        n, d, ar = 12, 3, 4
        star = optimal_transmitters_constrained(n, d, 3)
        for x in range(1, 6):
            sched = Schedule.from_sets(
                n, [list(range(x))], [list(range(x, x + ar))])
            ratio = Fraction(average_throughput(sched, d),
                             constrained_upper_bound(n, d, 3, ar))
            assert ratio == r_ratio(n, d, star, x)

    def test_undefined_when_star_too_large(self):
        with pytest.raises(ValueError, match="undefined"):
            r_ratio(6, 3, 5, 2)


@given(sched=random_schedule_strategy(max_n=6, max_len=5),
       d=st.integers(min_value=2, max_value=4))
@settings(max_examples=30, deadline=None)
def test_average_at_least_min(sched, d):
    """The average worst-case throughput dominates the minimum."""
    if d > sched.n - 1 or sched.n - 2 < d - 1:
        return
    assert average_throughput(sched, d) >= min_throughput(sched, d)
