"""Schedule serialization round trips and validation."""

import json

import pytest
from hypothesis import given, settings

from repro.core.nonsleeping import polynomial_schedule
from repro.core.serialization import (
    load_schedule,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from tests.conftest import random_schedule_strategy


class TestRoundTrip:
    def test_dict_roundtrip(self):
        s = polynomial_schedule(9, 2, q=3, k=1)
        assert schedule_from_dict(schedule_to_dict(s)) == s

    def test_file_roundtrip(self, tmp_path):
        s = polynomial_schedule(9, 2, q=3, k=1)
        path = tmp_path / "schedule.json"
        save_schedule(s, path, meta={"n": 9, "D": 2, "family": "polynomial"})
        assert load_schedule(path) == s
        doc = json.loads(path.read_text())
        assert doc["meta"]["family"] == "polynomial"

    @given(sched=random_schedule_strategy(max_n=6, max_len=6))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, sched):
        assert schedule_from_dict(schedule_to_dict(sched)) == sched

    def test_json_is_plain_lists(self):
        s = polynomial_schedule(9, 2, q=3, k=1)
        doc = schedule_to_dict(s)
        assert all(isinstance(slot, list) for slot in doc["tx"])
        json.dumps(doc)  # must be JSON-serializable as-is


class TestValidation:
    def test_wrong_format_tag(self):
        with pytest.raises(ValueError, match="not a repro-schedule"):
            schedule_from_dict({"format": "other", "version": 1})

    def test_wrong_version(self):
        doc = schedule_to_dict(polynomial_schedule(9, 2, q=3, k=1))
        doc["version"] = 99
        with pytest.raises(ValueError, match="version"):
            schedule_from_dict(doc)

    def test_not_a_mapping(self):
        with pytest.raises(ValueError, match="mapping"):
            schedule_from_dict([1, 2, 3])  # type: ignore[arg-type]

    def test_invalid_payload_caught_by_schedule_validation(self):
        doc = schedule_to_dict(polynomial_schedule(9, 2, q=3, k=1))
        doc["tx"][0] = [0]
        doc["rx"][0] = [0]  # overlap: Schedule must reject
        with pytest.raises(ValueError, match="intersect"):
            schedule_from_dict(doc)

    def test_missing_arrays(self):
        with pytest.raises(ValueError, match="lists"):
            schedule_from_dict({"format": "repro-schedule", "version": 1,
                                "n": 3, "tx": [[0]]})


class TestTopologySerialization:
    def test_roundtrip(self):
        from repro.core.serialization import topology_from_dict, topology_to_dict
        from repro.simulation.topology import grid

        t = grid(3, 4)
        assert topology_from_dict(topology_to_dict(t)) == t

    def test_json_compatible(self):
        from repro.core.serialization import topology_to_dict
        from repro.simulation.topology import ring

        json.dumps(topology_to_dict(ring(5)))

    def test_validation(self):
        from repro.core.serialization import topology_from_dict

        with pytest.raises(ValueError, match="repro-topology"):
            topology_from_dict({"format": "other"})
        with pytest.raises(ValueError, match="version"):
            topology_from_dict({"format": "repro-topology", "version": 9})


class TestFamilySerialization:
    def test_roundtrip(self):
        from repro.combinatorics.coverfree import CoverFreeFamily
        from repro.core.serialization import family_from_dict, family_to_dict

        fam = CoverFreeFamily.from_polynomial_code(3, 1, count=7)
        restored = family_from_dict(family_to_dict(fam))
        assert restored == fam
        json.dumps(family_to_dict(fam))

    def test_validation(self):
        from repro.core.serialization import family_from_dict

        with pytest.raises(ValueError, match="repro-coverfree"):
            family_from_dict([])
        with pytest.raises(ValueError, match="blocks"):
            family_from_dict({"format": "repro-coverfree", "version": 1,
                              "ground": 3, "blocks": "oops"})
