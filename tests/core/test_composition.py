"""Schedule transformations and their invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.composition import (
    concatenate,
    interleave_construction,
    permute_slots,
    relabel_nodes,
    rotate,
)
from repro.core.construction import construct_detailed
from repro.core.latency import worst_link_access_delay
from repro.core.nonsleeping import polynomial_schedule, tdma_schedule
from repro.core.throughput import average_throughput, min_throughput
from repro.core.transparency import is_topology_transparent
from tests.conftest import schedule_with_degree_strategy


class TestPermuteSlots:
    def test_reorders(self):
        s = tdma_schedule(4)
        p = permute_slots(s, [3, 2, 1, 0])
        assert p.tx_set(0) == {3}
        assert p.tx_set(3) == {0}

    def test_identity(self):
        s = tdma_schedule(4)
        assert permute_slots(s, [0, 1, 2, 3]) == s

    def test_invalid_permutation(self):
        s = tdma_schedule(4)
        with pytest.raises(ValueError, match="exactly once"):
            permute_slots(s, [0, 0, 1, 2])
        with pytest.raises(ValueError, match="exactly once"):
            permute_slots(s, [0, 1])
        with pytest.raises(ValueError):
            permute_slots(s, [0, 1, 2, 4])

    @given(pair=schedule_with_degree_strategy(max_n=6, max_len=6),
           seed=st.integers(min_value=0, max_value=99))
    @settings(max_examples=30, deadline=None)
    def test_invariants(self, pair, seed):
        """Transparency and both throughputs are slot-order-free."""
        sched, d = pair
        rng = np.random.default_rng(seed)
        perm = rng.permutation(sched.frame_length).tolist()
        permuted = permute_slots(sched, perm)
        assert is_topology_transparent(permuted, d) == \
            is_topology_transparent(sched, d)
        assert average_throughput(permuted, d) == average_throughput(sched, d)
        assert min_throughput(permuted, d) == min_throughput(sched, d)
        assert permuted.duty_cycles() == sched.duty_cycles()


class TestRotate:
    def test_rotation(self):
        s = tdma_schedule(4)
        r = rotate(s, 1)
        assert r.tx_set(0) == {1}
        assert rotate(s, 4) == s
        assert rotate(s, -1).tx_set(0) == {3}

    def test_rotation_composes(self):
        s = polynomial_schedule(9, 2, q=3, k=1)
        assert rotate(rotate(s, 4), 5) == s


class TestRelabelNodes:
    def test_relabel(self):
        s = tdma_schedule(3)
        r = relabel_nodes(s, [2, 0, 1])
        assert r.tx_set(0) == {2}
        assert r.tx_set(1) == {0}

    def test_invalid_mapping(self):
        with pytest.raises(ValueError, match="exactly once"):
            relabel_nodes(tdma_schedule(3), [0, 0, 1])

    @given(pair=schedule_with_degree_strategy(max_n=6, max_len=5),
           seed=st.integers(min_value=0, max_value=99))
    @settings(max_examples=30, deadline=None)
    def test_invariants(self, pair, seed):
        """The class N_n^D is symmetric under node renaming."""
        sched, d = pair
        rng = np.random.default_rng(seed)
        mapping = rng.permutation(sched.n).tolist()
        renamed = relabel_nodes(sched, mapping)
        assert is_topology_transparent(renamed, d) == \
            is_topology_transparent(sched, d)
        assert average_throughput(renamed, d) == average_throughput(sched, d)
        assert min_throughput(renamed, d) == min_throughput(sched, d)


class TestConcatenate:
    def test_frame_is_sum(self):
        a, b = tdma_schedule(5), tdma_schedule(5)
        c = concatenate(a, b)
        assert c.frame_length == 10
        assert c.tx_set(7) == a.tx_set(2)

    def test_mismatched_n(self):
        with pytest.raises(ValueError, match="node sets"):
            concatenate(tdma_schedule(4), tdma_schedule(5))

    def test_transparency_inherited(self):
        from repro.core.schedule import Schedule

        good = tdma_schedule(5)
        junk = Schedule.non_sleeping(5, [[0, 1, 2, 3, 4]])  # useless slots
        assert is_topology_transparent(concatenate(good, junk), 3)
        assert is_topology_transparent(concatenate(junk, good), 3)

    def test_throughput_is_weighted_mean(self):
        a = tdma_schedule(6)
        from repro.core.schedule import Schedule

        b = Schedule.non_sleeping(6, [[0, 1]])
        c = concatenate(a, b)
        d = 2
        expected = (average_throughput(a, d) * a.frame_length +
                    average_throughput(b, d) * b.frame_length) / c.frame_length
        assert average_throughput(c, d) == expected


class TestInterleave:
    def test_is_permutation_of_construction(self):
        res = construct_detailed(polynomial_schedule(25, 3), 3, 4, 8)
        inter = interleave_construction(res)
        assert sorted(inter.tx) == sorted(res.schedule.tx)
        assert inter.frame_length == res.schedule.frame_length
        assert average_throughput(inter, 3) == \
            average_throughput(res.schedule, 3)

    def test_transparency_preserved(self):
        res = construct_detailed(polynomial_schedule(9, 2, q=3, k=1), 2, 2, 4)
        assert is_topology_transparent(interleave_construction(res), 2)

    def test_delay_stays_within_generic_bound(self):
        """Reordering moves the worst-case delay around but can never
        escape the transparency bound; the ablation bench measures the
        direction per instance (for these families Figure 2's output is
        already well spread, so the effect is small either way)."""
        from repro.core.latency import frame_delay_bound

        res = construct_detailed(polynomial_schedule(9, 2, q=3, k=1), 2, 2, 4)
        plain_delay = worst_link_access_delay(res.schedule, 2)
        inter_delay = worst_link_access_delay(interleave_construction(res), 2)
        bound = frame_delay_bound(res.schedule)
        assert plain_delay <= bound
        assert inter_delay <= bound

    def test_round_robin_order(self):
        res = construct_detailed(tdma_schedule(4), 2, 2, 2)
        inter = interleave_construction(res)
        # TDMA with aR=2: each source slot yields ceil(3/2)=2 constructed
        # slots; round-robin means the first 4 slots are the first
        # constructed slot of each source slot, i.e. transmitters 0,1,2,3.
        assert [inter.tx_set(i) for i in range(4)] == \
            [{0}, {1}, {2}, {3}]
