"""Deployment planner."""

from fractions import Fraction

import pytest

from repro.core.planner import Plan, candidate_sources, plan_schedule
from repro.core.throughput import average_throughput, constrained_upper_bound
from repro.core.transparency import is_topology_transparent


class TestCandidates:
    def test_low_degree_includes_steiner(self):
        names = {name for name, _ in candidate_sources(12, 2)}
        assert {"tdma", "polynomial", "steiner", "projective", "mols"} <= names

    def test_high_degree_drops_steiner(self):
        names = {name for name, _ in candidate_sources(12, 3)}
        assert "steiner" not in names

    def test_all_candidates_non_sleeping(self):
        for _, sched in candidate_sources(10, 2):
            assert sched.is_non_sleeping()


class TestPlan:
    def test_budget_respected(self):
        plan = plan_schedule(15, 2, max_duty=0.4)
        assert plan.duty_cycle <= Fraction(2, 5)
        assert plan.schedule.is_alpha_schedule(plan.alpha_t, plan.alpha_r)

    def test_result_is_transparent(self):
        plan = plan_schedule(12, 2, max_duty=0.5)
        assert is_topology_transparent(plan.schedule, 2)

    def test_throughput_field_exact(self):
        plan = plan_schedule(12, 2, max_duty=0.5)
        assert plan.throughput == average_throughput(plan.schedule, 2)
        assert plan.throughput <= constrained_upper_bound(
            12, 2, plan.alpha_t, plan.alpha_r)

    def test_larger_budget_never_worse(self):
        small = plan_schedule(15, 2, max_duty=0.3)
        large = plan_schedule(15, 2, max_duty=0.7)
        assert large.throughput >= small.throughput

    def test_impossible_budget(self):
        with pytest.raises(ValueError, match="duty budget"):
            plan_schedule(15, 2, max_duty=0.05)  # < 2/15

    def test_balanced_mode(self):
        plan = plan_schedule(12, 2, max_duty=0.5, balanced=True)
        assert plan.duty_cycle <= Fraction(1, 2)
        assert is_topology_transparent(plan.schedule, 2)

    def test_custom_families(self):
        from repro.core.nonsleeping import tdma_schedule

        plan = plan_schedule(10, 2, max_duty=0.6,
                             families=[("tdma", tdma_schedule(10))])
        assert plan.family == "tdma"

    def test_plan_is_frozen_dataclass(self):
        plan = plan_schedule(10, 2, max_duty=0.6)
        assert isinstance(plan, Plan)
        with pytest.raises(AttributeError):
            plan.alpha_t = 99  # type: ignore[misc]
