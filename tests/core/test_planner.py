"""Deployment planner."""

from fractions import Fraction

import pytest

from repro.core.nonsleeping import tdma_schedule
from repro.core.planner import (
    Plan,
    candidate_sources,
    duty_budget_fraction,
    duty_grid,
    plan_schedule,
    select_best,
)
from repro.core.throughput import average_throughput, constrained_upper_bound
from repro.core.transparency import is_topology_transparent


class TestCandidates:
    def test_low_degree_includes_steiner(self):
        names = {name for name, _ in candidate_sources(12, 2)}
        assert {"tdma", "polynomial", "steiner", "projective", "mols"} <= names

    def test_high_degree_drops_steiner(self):
        names = {name for name, _ in candidate_sources(12, 3)}
        assert "steiner" not in names

    def test_all_candidates_non_sleeping(self):
        for _, sched in candidate_sources(10, 2):
            assert sched.is_non_sleeping()


class TestPlan:
    def test_budget_respected(self):
        plan = plan_schedule(15, 2, max_duty=0.4)
        assert plan.duty_cycle <= Fraction(2, 5)
        assert plan.schedule.is_alpha_schedule(plan.alpha_t, plan.alpha_r)

    def test_result_is_transparent(self):
        plan = plan_schedule(12, 2, max_duty=0.5)
        assert is_topology_transparent(plan.schedule, 2)

    def test_throughput_field_exact(self):
        plan = plan_schedule(12, 2, max_duty=0.5)
        assert plan.throughput == average_throughput(plan.schedule, 2)
        assert plan.throughput <= constrained_upper_bound(
            12, 2, plan.alpha_t, plan.alpha_r)

    def test_larger_budget_never_worse(self):
        small = plan_schedule(15, 2, max_duty=0.3)
        large = plan_schedule(15, 2, max_duty=0.7)
        assert large.throughput >= small.throughput

    def test_impossible_budget(self):
        with pytest.raises(ValueError, match="duty budget"):
            plan_schedule(15, 2, max_duty=0.05)  # < 2/15

    def test_balanced_mode(self):
        plan = plan_schedule(12, 2, max_duty=0.5, balanced=True)
        assert plan.duty_cycle <= Fraction(1, 2)
        assert is_topology_transparent(plan.schedule, 2)

    def test_custom_families(self):
        from repro.core.nonsleeping import tdma_schedule

        plan = plan_schedule(10, 2, max_duty=0.6,
                             families=[("tdma", tdma_schedule(10))])
        assert plan.family == "tdma"

    def test_plan_is_frozen_dataclass(self):
        plan = plan_schedule(10, 2, max_duty=0.6)
        assert isinstance(plan, Plan)
        with pytest.raises(AttributeError):
            plan.alpha_t = 99  # type: ignore[misc]


class TestExactBudget:
    def test_float_budget_read_as_decimal(self):
        # A float 0.3 means the decimal the user typed, not the binary
        # double 0.2999...88.
        assert duty_budget_fraction(0.3) == Fraction(3, 10)

    def test_exact_budget_types_pass_through(self):
        assert duty_budget_fraction("3/10") == Fraction(3, 10)
        assert duty_budget_fraction(Fraction(1, 3)) == Fraction(1, 3)
        assert duty_budget_fraction(1) == Fraction(1)

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError, match="not a valid fraction"):
            duty_budget_fraction("3/0")
        with pytest.raises(ValueError, match="not a valid fraction"):
            duty_budget_fraction("garbage")
        with pytest.raises(ValueError, match="lie in"):
            duty_budget_fraction(Fraction(3, 2))
        with pytest.raises(ValueError):
            duty_budget_fraction(1.5)

    def test_boundary_budget_0_3_accepts_exact_duty(self):
        # Regression: the budget is converted to an exact Fraction once;
        # a candidate sitting exactly on the boundary must be admitted.
        plan = plan_schedule(20, 2, max_duty=0.3)
        assert plan.duty_cycle == Fraction(3, 10)
        assert plan == plan_schedule(20, 2, Fraction(3, 10))
        assert plan == plan_schedule(20, 2, "3/10")

    def test_awake_slot_cap_is_exact(self):
        # Regression: int(0.58 * 50) == 28 loses one awake slot to binary
        # rounding; the exact floor of (29/50) * 50 is 29.
        assert int(0.58 * 50) == 28
        points = duty_grid(50, 2, duty_budget_fraction(0.58),
                           [("tdma", tdma_schedule(50))])
        assert max(p.alpha_t + p.alpha_r for p in points) == 29


class TestGrid:
    def test_no_duplicate_pairs_per_family(self):
        points = duty_grid(12, 2, Fraction(1, 2), candidate_sources(12, 2))
        keys = [(p.family, p.alpha_t, p.alpha_r) for p in points]
        assert len(keys) == len(set(keys))

    def test_repeated_family_entries_deduplicate(self):
        source = tdma_schedule(12)
        doubled = duty_grid(12, 2, Fraction(1, 2),
                            [("tdma", source), ("tdma", source)])
        single = duty_grid(12, 2, Fraction(1, 2), [("tdma", source)])
        assert len(doubled) == len(single)

    def test_infeasible_budget_empty_grid(self):
        points = duty_grid(15, 2, Fraction(1, 20),
                           [("tdma", tdma_schedule(15))])
        assert points == []

    def test_select_best_prefers_earlier_on_exact_tie(self):
        plan = plan_schedule(12, 2, max_duty=0.5)
        tie = Plan(schedule=plan.schedule, family="copy",
                   alpha_t=plan.alpha_t, alpha_r=plan.alpha_r,
                   throughput=plan.throughput, duty_cycle=plan.duty_cycle,
                   frame_length=plan.frame_length)
        assert select_best([plan, tie]) is plan
        assert select_best([tie, plan]) is tie
        assert select_best([]) is None


class TestPlannerCache:
    def test_warm_call_returns_identical_plan(self, tmp_path):
        from repro.service.store import ScheduleStore

        store = ScheduleStore(tmp_path / "cache")
        cold = plan_schedule(12, 2, max_duty=0.5, cache=store)
        warm = plan_schedule(12, 2, max_duty=0.5, cache=store)
        assert warm == cold
        assert store.stats.hits >= 1
