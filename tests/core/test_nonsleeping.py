"""Non-sleeping schedule factories and parameter auto-selection."""

import pytest

from repro.combinatorics.coverfree import CoverFreeFamily
from repro.core.nonsleeping import (
    best_nonsleeping_schedule,
    from_cover_free_family,
    polynomial_schedule,
    projective_plane_schedule,
    steiner_schedule,
    tdma_schedule,
)
from repro.core.transparency import is_topology_transparent, satisfies_requirement1


class TestFromCoverFree:
    def test_mapping(self):
        fam = CoverFreeFamily.from_sets(4, [{0, 1}, {2}, {1, 3}])
        sched = from_cover_free_family(fam, 3)
        assert sched.frame_length == 4
        assert sched.tran(0) == {0, 1}
        assert sched.tran(1) == {2}
        assert sched.tran(2) == {1, 3}
        assert sched.is_non_sleeping()

    def test_too_few_blocks(self):
        fam = CoverFreeFamily.trivial(3)
        with pytest.raises(ValueError, match="blocks"):
            from_cover_free_family(fam, 4)

    def test_d_cover_free_gives_requirement1(self):
        fam = CoverFreeFamily.from_polynomial_code(3, 1, count=6)
        assert fam.is_d_cover_free(2)
        sched = from_cover_free_family(fam, 6)
        assert satisfies_requirement1(sched, 2)


class TestTDMA:
    @pytest.mark.parametrize("n", [3, 5, 9])
    def test_structure(self, n):
        s = tdma_schedule(n)
        assert s.frame_length == n
        assert s.tx_counts == (1,) * n
        assert s.is_non_sleeping()

    @pytest.mark.parametrize("n,d", [(5, 2), (5, 4), (7, 3)])
    def test_transparent(self, n, d):
        assert is_topology_transparent(tdma_schedule(n), d)


class TestPolynomial:
    @pytest.mark.parametrize("n,d", [(9, 2), (25, 3), (16, 2), (27, 4)])
    def test_auto_params_transparent(self, n, d):
        s = polynomial_schedule(n, d)
        assert s.is_non_sleeping()
        assert satisfies_requirement1(s, d)

    def test_explicit_params(self):
        s = polynomial_schedule(9, 2, q=3, k=1)
        assert s.frame_length == 9
        assert all(c == 3 for c in (s.tran_mask(x).bit_count()
                                    for x in range(9)))

    def test_full_code_uniform_slots(self):
        """n = q**(k+1) gives exactly q**k transmitters per slot."""
        s = polynomial_schedule(25, 3, q=5, k=1)
        assert all(c == 5 for c in s.tx_counts)

    def test_sufficiency_bound_enforced(self):
        with pytest.raises(ValueError, match="k\\*D"):
            polynomial_schedule(9, 3, q=3, k=1)  # 1*3+1 > 3

    def test_codeword_capacity_enforced(self):
        with pytest.raises(ValueError, match="codewords"):
            polynomial_schedule(10, 2, q=3, k=1)  # only 9 codewords

    def test_half_specified_params_rejected(self):
        with pytest.raises(ValueError, match="both"):
            polynomial_schedule(9, 2, q=3)


class TestSteiner:
    @pytest.mark.parametrize("n", [5, 12, 20])
    def test_auto_transparent(self, n):
        s = steiner_schedule(n, 2)
        assert satisfies_requirement1(s, 2)
        assert all(s.tran_mask(x).bit_count() == 3 for x in range(n))

    def test_degree_limit(self):
        with pytest.raises(ValueError, match="2-cover-free"):
            steiner_schedule(10, 3)

    def test_explicit_order(self):
        s = steiner_schedule(7, 2, v=7)
        assert s.frame_length == 7

    def test_order_too_small(self):
        with pytest.raises(ValueError, match="triples"):
            steiner_schedule(8, 2, v=7)  # STS(7) has exactly 7 triples

    def test_inadmissible_order(self):
        with pytest.raises(ValueError, match="STS"):
            steiner_schedule(5, 2, v=8)


class TestProjective:
    @pytest.mark.parametrize("n,d", [(7, 2), (13, 3), (20, 4)])
    def test_auto_transparent(self, n, d):
        s = projective_plane_schedule(n, d)
        assert satisfies_requirement1(s, d)

    def test_explicit_q(self):
        s = projective_plane_schedule(7, 2, q=2)
        assert s.frame_length == 7
        assert all(s.tran_mask(x).bit_count() == 3 for x in range(7))

    def test_q_below_degree_rejected(self):
        with pytest.raises(ValueError, match="q >= D"):
            projective_plane_schedule(7, 3, q=2)

    def test_not_enough_lines(self):
        with pytest.raises(ValueError, match="lines"):
            projective_plane_schedule(8, 2, q=2)


class TestMOLS:
    @pytest.mark.parametrize("n,d", [(9, 2), (30, 2), (25, 3), (100, 2)])
    def test_auto_transparent(self, n, d):
        from repro.core.nonsleeping import mols_schedule

        s = mols_schedule(n, d)
        assert s.is_non_sleeping()
        assert satisfies_requirement1(s, d)

    def test_composite_order_supported(self):
        from repro.core.nonsleeping import mols_schedule

        # m = 10 is not a prime power; TD(3, 10) covers n <= 100 at D = 2.
        s = mols_schedule(100, 2, m=10, k=3)
        assert s.frame_length == 30
        assert satisfies_requirement1(s, 2)

    def test_k_too_small(self):
        from repro.core.nonsleeping import mols_schedule

        with pytest.raises(ValueError, match="k >= D"):
            mols_schedule(9, 3, m=5, k=3)

    def test_not_enough_blocks(self):
        from repro.core.nonsleeping import mols_schedule

        with pytest.raises(ValueError, match="blocks"):
            mols_schedule(26, 2, m=5, k=3)

    def test_half_params_rejected(self):
        from repro.core.nonsleeping import mols_schedule

        with pytest.raises(ValueError, match="both"):
            mols_schedule(9, 2, m=5)


class TestBest:
    @pytest.mark.parametrize("n,d", [(10, 2), (25, 3), (50, 2), (40, 5)])
    def test_returns_shortest_known(self, n, d):
        name, sched = best_nonsleeping_schedule(n, d)
        assert sched.frame_length <= tdma_schedule(n).frame_length
        assert sched.frame_length <= polynomial_schedule(n, d).frame_length
        assert name in {"tdma", "polynomial", "steiner", "projective", "mols"}

    def test_result_transparent(self):
        _, sched = best_nonsleeping_schedule(20, 2)
        assert is_topology_transparent(sched, 2)
