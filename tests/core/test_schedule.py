"""The Schedule datatype: construction, validation, accessors, conversions."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.schedule import Schedule
from tests.conftest import random_schedule_strategy


class TestConstruction:
    def test_from_sets(self):
        s = Schedule.from_sets(4, [[0], [1, 2]], [[1], [3]])
        assert s.frame_length == 2
        assert s.tx_set(0) == {0}
        assert s.tx_set(1) == {1, 2}
        assert s.rx_set(1) == {3}

    def test_non_sleeping_fills_receivers(self):
        s = Schedule.non_sleeping(5, [[0], [1, 2]])
        assert s.is_non_sleeping()
        assert s.rx_set(0) == {1, 2, 3, 4}
        assert s.rx_set(1) == {0, 3, 4}

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="intersect"):
            Schedule.from_sets(3, [[0, 1]], [[1, 2]])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            Schedule(3, (1,), (2, 4))

    def test_empty_frame_rejected(self):
        with pytest.raises(ValueError, match="at least one slot"):
            Schedule(3, (), ())

    def test_out_of_range_node(self):
        with pytest.raises(ValueError):
            Schedule.from_sets(3, [[3]], [[]])
        with pytest.raises(ValueError):
            Schedule.from_sets(3, [[0]], [[-1]])

    def test_mask_out_of_range(self):
        with pytest.raises(ValueError):
            Schedule(2, (4,), (0,))

    def test_from_matrices_roundtrip(self):
        s = Schedule.from_sets(5, [[0, 2], [1]], [[1], [0, 4]])
        s2 = Schedule.from_matrices(s.tx_matrix(), s.rx_matrix())
        assert s2 == s

    def test_from_matrices_shape_check(self):
        with pytest.raises(ValueError):
            Schedule.from_matrices(np.zeros((2, 3), dtype=bool),
                                   np.zeros((3, 3), dtype=bool))


class TestAccessors:
    def test_tran_recv_consistency(self):
        s = Schedule.from_sets(4, [[0], [1], [0, 2]], [[1, 2], [0], [3]])
        assert s.tran(0) == {0, 2}
        assert s.tran(1) == {1}
        assert s.tran(3) == frozenset()
        assert s.recv(1) == {0}
        assert s.recv(3) == {2}

    def test_tran_mask_matches_tx(self):
        s = Schedule.from_sets(4, [[0, 1], [2]], [[2], [0]])
        for x in range(4):
            for i in range(s.frame_length):
                in_tx = bool(s.tx[i] >> x & 1)
                in_mask = bool(s.tran_mask(x) >> i & 1)
                assert in_tx == in_mask

    def test_counts(self):
        s = Schedule.from_sets(5, [[0, 1, 2], []], [[3], [0, 1]])
        assert s.tx_counts == (3, 0)
        assert s.rx_counts == (1, 2)

    def test_node_range_validated(self):
        s = Schedule.from_sets(3, [[0]], [[1]])
        with pytest.raises(ValueError):
            s.tran_mask(3)
        with pytest.raises(ValueError):
            s.recv_mask(-1)


class TestClassification:
    def test_alpha_schedule(self):
        s = Schedule.from_sets(5, [[0, 1], [2]], [[2, 3], [0]])
        assert s.is_alpha_schedule(2, 2)
        assert not s.is_alpha_schedule(1, 2)
        assert not s.is_alpha_schedule(2, 1)

    def test_non_sleeping_detection(self):
        assert Schedule.non_sleeping(3, [[0]]).is_non_sleeping()
        assert not Schedule.from_sets(3, [[0]], [[1]]).is_non_sleeping()

    def test_duty_cycle(self):
        s = Schedule.from_sets(3, [[0], [], [0]], [[1], [1], []])
        assert s.duty_cycle(0) == Fraction(2, 3)
        assert s.duty_cycle(1) == Fraction(2, 3)
        assert s.duty_cycle(2) == Fraction(0)
        assert s.average_duty_cycle() == Fraction(4, 9)

    def test_duty_cycles_list(self):
        s = Schedule.non_sleeping(3, [[0]])
        assert s.duty_cycles() == [Fraction(1)] * 3
        assert s.average_duty_cycle() == Fraction(1)

    def test_transmit_share(self):
        s = Schedule.from_sets(3, [[0], [0], [1]], [[], [], []])
        assert s.transmit_share(0) == Fraction(2, 3)
        assert s.transmit_share(1) == Fraction(1, 3)
        assert s.transmit_share(2) == Fraction(0)


class TestConversions:
    def test_matrices_shapes(self):
        s = Schedule.from_sets(4, [[0], [1]], [[2], [3]])
        assert s.tx_matrix().shape == (2, 4)
        assert s.rx_matrix().shape == (2, 4)
        assert s.tx_matrix().sum() == 2

    def test_restricted_to(self):
        s = Schedule.non_sleeping(5, [[0, 4], [2]])
        r = s.restricted_to(3)
        assert r.n == 3
        assert r.tx_set(0) == {0}
        assert r.rx_set(0) == {1, 2}

    def test_restricted_to_bounds(self):
        s = Schedule.non_sleeping(3, [[0]])
        with pytest.raises(ValueError):
            s.restricted_to(4)

    def test_repr(self):
        s = Schedule.non_sleeping(3, [[0]])
        assert "non-sleeping" in repr(s)
        assert "n=3" in repr(s)


@given(sched=random_schedule_strategy())
@settings(max_examples=40, deadline=None)
def test_tran_recv_disjoint_per_slot(sched):
    """A node never transmits and receives in the same slot."""
    for x in range(sched.n):
        assert sched.tran_mask(x) & sched.recv_mask(x) == 0


@given(sched=random_schedule_strategy())
@settings(max_examples=40, deadline=None)
def test_counts_sum_to_popcounts(sched):
    assert sum(sched.tx_counts) == sum(m.bit_count() for m in sched.tx)
    assert sum(sched.rx_counts) == sum(m.bit_count() for m in sched.rx)


@given(sched=random_schedule_strategy())
@settings(max_examples=30, deadline=None)
def test_matrix_roundtrip_property(sched):
    assert Schedule.from_matrices(sched.tx_matrix(), sched.rx_matrix()) == sched
