"""Worst-case latency analysis."""

import pytest

from repro.core.latency import (
    frame_delay_bound,
    link_access_delay,
    max_cyclic_gap,
    path_delay_bound,
    worst_link_access_delay,
)
from repro.core.construction import construct
from repro.core.nonsleeping import polynomial_schedule, tdma_schedule
from repro.core.schedule import Schedule


class TestMaxCyclicGap:
    def test_single_slot(self):
        # One slot per frame: worst wait is a full frame.
        assert max_cyclic_gap(0b0001, 4) == 4

    def test_two_slots(self):
        assert max_cyclic_gap(0b00100010, 8) == 4

    def test_every_slot(self):
        assert max_cyclic_gap(0b1111, 4) == 1

    def test_wraparound_dominates(self):
        # Slots {0, 1}: the wrap gap 0 -> next frame's 0 is 7.
        assert max_cyclic_gap(0b00000011, 8) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="unbounded"):
            max_cyclic_gap(0, 8)

    def test_mask_bounds(self):
        with pytest.raises(ValueError):
            max_cyclic_gap(0b10000, 4)


class TestLinkDelay:
    def test_tdma_delay_is_frame(self):
        s = tdma_schedule(5)
        # Node 0's only guaranteed slot recurs every n slots.
        assert link_access_delay(s, 2, 0, 1) == 5

    def test_non_transparent_raises(self):
        s = Schedule.non_sleeping(4, [[0, 1], [2], [3]])
        with pytest.raises(ValueError, match="no guaranteed slot"):
            link_access_delay(s, 2, 0, 2)

    def test_same_node_rejected(self):
        with pytest.raises(ValueError, match="differ"):
            link_access_delay(tdma_schedule(4), 2, 1, 1)

    def test_polynomial_beats_frame_bound(self):
        """q guaranteed slots spread over q subframes: much better than 2L-1."""
        s = polynomial_schedule(9, 2, q=3, k=1)
        worst = worst_link_access_delay(s, 2)
        assert worst < frame_delay_bound(s)
        assert worst <= s.frame_length  # at least one slot per frame

    def test_constructed_schedule_has_finite_delay(self):
        s = construct(polynomial_schedule(9, 2, q=3, k=1), 2, 2, 4)
        worst = worst_link_access_delay(s, 2)
        assert 0 < worst <= frame_delay_bound(s)


class TestMeanWait:
    def test_docstring_example(self):
        from fractions import Fraction

        from repro.core.latency import mean_cyclic_wait

        assert mean_cyclic_wait(0b0001, 4) == Fraction(5, 2)

    def test_every_slot_means_wait_one(self):
        from repro.core.latency import mean_cyclic_wait

        assert mean_cyclic_wait(0b1111, 4) == 1

    def test_spread_beats_clustered(self):
        """Two slots spread across the frame wait less than two adjacent."""
        from repro.core.latency import mean_cyclic_wait

        spread = mean_cyclic_wait(0b00010001, 8)
        clustered = mean_cyclic_wait(0b00000011, 8)
        assert spread < clustered

    def test_empty_rejected(self):
        from repro.core.latency import mean_cyclic_wait

        with pytest.raises(ValueError, match="unbounded"):
            mean_cyclic_wait(0, 8)

    def test_matches_exhaustive_simulation(self):
        """Inject one packet at every arrival phase; the measured mean
        latency must equal mean_cyclic_wait exactly."""
        from fractions import Fraction

        from repro.core.latency import mean_cyclic_wait
        from repro.core.transparency import sigma
        from repro.simulation.engine import Packet, Simulator
        from repro.simulation.topology import Topology

        from repro.core.schedule import Schedule

        # Node 0 -> node 1; node 1 listens in slots {1, 4} of a frame of 6.
        sched = Schedule.from_sets(
            2,
            [[0], [0], [], [0], [0], []],
            [[], [1], [], [], [1], []],
        )
        topo = Topology.from_edges(2, [(0, 1)])
        mask = sigma(sched, 0, 1)
        expected = mean_cyclic_wait(mask, sched.frame_length)

        latencies = []
        for phase in range(sched.frame_length):

            class _Quiet:
                saturated = False

                def arrivals(self, slot):
                    return []

            sim = Simulator(topo, sched, _Quiet())
            # Warm the clock to the phase, then inject one packet.
            if phase:
                sim.run_slots(phase)
            sim.queues[0].append(Packet(0, 0, 1, phase, 1))
            while not sim.metrics.latencies:
                sim.step()
            latencies.append(sim.metrics.latencies[-1])
        assert Fraction(sum(latencies), len(latencies)) == expected

    def test_mean_link_access_delay(self):
        from repro.core.latency import (
            link_access_delay,
            mean_link_access_delay,
        )

        s = polynomial_schedule(9, 2, q=3, k=1)
        mean = mean_link_access_delay(s, 2, 0, 1)
        worst = link_access_delay(s, 2, 0, 1)
        assert 0 < mean <= worst

    def test_mean_link_access_requires_transparency(self):
        from repro.core.latency import mean_link_access_delay
        from repro.core.schedule import Schedule

        s = Schedule.non_sleeping(4, [[0, 1], [2], [3]])
        with pytest.raises(ValueError, match="no guaranteed slot"):
            mean_link_access_delay(s, 2, 0, 2)


class TestPathDelay:
    def test_additive(self):
        s = tdma_schedule(5)
        single = link_access_delay(s, 2, 0, 1)
        assert path_delay_bound(s, 2, [0, 1, 2]) == \
            single + link_access_delay(s, 2, 1, 2)

    def test_short_path_rejected(self):
        with pytest.raises(ValueError, match="two nodes"):
            path_delay_bound(tdma_schedule(4), 2, [1])


class TestFrameBound:
    def test_value(self):
        assert frame_delay_bound(tdma_schedule(6)) == 11

    def test_dominates_exact(self):
        for s in (tdma_schedule(5), polynomial_schedule(9, 2, q=3, k=1)):
            assert worst_link_access_delay(s, 2) <= frame_delay_bound(s)
