"""The NumPy-matrix transparency checker must agree with the bitmask one."""

from hypothesis import given, settings

from repro.core.matrixcheck import matrix_is_topology_transparent
from repro.core.nonsleeping import polynomial_schedule, tdma_schedule
from repro.core.transparency import is_topology_transparent
from tests.conftest import schedule_with_degree_strategy


class TestAgreement:
    @given(pair=schedule_with_degree_strategy(max_n=6, max_len=7))
    @settings(max_examples=50, deadline=None)
    def test_matches_bitmask_implementation(self, pair):
        sched, d = pair
        assert matrix_is_topology_transparent(sched, d) == \
            is_topology_transparent(sched, d)

    def test_known_positive(self):
        assert matrix_is_topology_transparent(tdma_schedule(6), 3)
        assert matrix_is_topology_transparent(
            polynomial_schedule(9, 2, q=3, k=1), 2)

    def test_known_negative(self):
        from repro.core.schedule import Schedule

        s = Schedule.non_sleeping(4, [[0, 1], [0, 2], [3]])
        assert not matrix_is_topology_transparent(s, 2)
