"""The command-line interface, exercised through main()."""

import json

import pytest

from repro.cli import main
from repro.core.serialization import load_schedule
from repro.core.transparency import is_topology_transparent


class TestBuild:
    def test_build_polynomial(self, tmp_path, capsys):
        out = tmp_path / "s.json"
        rc = main(["build", "-n", "16", "-d", "3", "--alpha-t", "3",
                   "--alpha-r", "6", "--family", "polynomial",
                   "-o", str(out)])
        assert rc == 0
        sched = load_schedule(out)
        assert sched.is_alpha_schedule(3, 6)
        assert is_topology_transparent(sched, 3)
        assert "family=polynomial" in capsys.readouterr().out

    def test_build_auto_family(self, tmp_path):
        out = tmp_path / "s.json"
        assert main(["build", "-n", "12", "-d", "2", "--alpha-t", "2",
                     "--alpha-r", "4", "-o", str(out)]) == 0
        assert load_schedule(out).n == 12

    def test_build_balanced(self, tmp_path):
        out = tmp_path / "s.json"
        assert main(["build", "-n", "12", "-d", "2", "--alpha-t", "2",
                     "--alpha-r", "4", "--balanced", "-o", str(out)]) == 0

    def test_build_invalid_budget(self, tmp_path, capsys):
        out = tmp_path / "s.json"
        rc = main(["build", "-n", "5", "-d", "2", "--alpha-t", "4",
                   "--alpha-r", "4", "-o", str(out)])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestPlan:
    def test_plan_writes_schedule(self, tmp_path, capsys):
        out = tmp_path / "p.json"
        rc = main(["plan", "-n", "15", "-d", "2", "--max-duty", "0.5",
                   "-o", str(out)])
        assert rc == 0
        sched = load_schedule(out)
        assert float(sched.average_duty_cycle()) <= 0.5
        assert "throughput=" in capsys.readouterr().out

    def test_plan_impossible(self, tmp_path, capsys):
        rc = main(["plan", "-n", "15", "-d", "2", "--max-duty", "0.05",
                   "-o", str(tmp_path / "p.json")])
        assert rc == 2


class TestVerify:
    def test_transparent(self, tmp_path, capsys):
        out = tmp_path / "s.json"
        main(["build", "-n", "12", "-d", "2", "--alpha-t", "2",
              "--alpha-r", "4", "-o", str(out)])
        rc = main(["verify", str(out), "-d", "2"])
        assert rc == 0
        assert "TRANSPARENT" in capsys.readouterr().out

    def test_not_transparent(self, tmp_path, capsys):
        from repro.core.schedule import Schedule
        from repro.core.serialization import save_schedule

        bad = Schedule.non_sleeping(5, [[0, 1], [2], [3]])
        path = tmp_path / "bad.json"
        save_schedule(bad, path)
        rc = main(["verify", str(path), "-d", "2"])
        assert rc == 1
        assert "witness" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["verify", "/nonexistent.json", "-d", "2"]) == 2


class TestAnalyze:
    def test_report_fields(self, tmp_path, capsys):
        out = tmp_path / "s.json"
        main(["build", "-n", "12", "-d", "2", "--alpha-t", "2",
              "--alpha-r", "4", "-o", str(out)])
        capsys.readouterr()  # drop the build line
        assert main(["analyze", str(out), "-d", "2"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["n"] == 12
        assert 0 < report["average_worst_case_throughput"] < 1
        assert report["minimum_worst_case_throughput"] > 0
        assert "worst_link_access_delay" not in report

    def test_latency_flag(self, tmp_path, capsys):
        out = tmp_path / "s.json"
        main(["build", "-n", "9", "-d", "2", "--alpha-t", "2",
              "--alpha-r", "4", "--family", "polynomial", "-o", str(out)])
        capsys.readouterr()  # drop the build line
        assert main(["analyze", str(out), "-d", "2", "--latency"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["worst_link_access_delay"] > 0


class TestSimulate:
    def build(self, tmp_path):
        out = tmp_path / "s.json"
        main(["build", "-n", "16", "-d", "4", "--alpha-t", "3",
              "--alpha-r", "6", "--family", "polynomial", "-o", str(out)])
        return out

    def test_saturated_grid(self, tmp_path, capsys):
        out = self.build(tmp_path)
        capsys.readouterr()  # drop the build line
        rc = main(["simulate", str(out), "--topology", "grid",
                   "--nodes", "16", "-d", "4", "--frames", "2"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["min_link_throughput"] >= 1.0  # transparency, observed
        assert report["mean_latency_slots"] is None  # no queued packets

    def test_sensing_ring(self, tmp_path, capsys):
        out = self.build(tmp_path)
        capsys.readouterr()  # drop the build line
        rc = main(["simulate", str(out), "--topology", "ring",
                   "--nodes", "16", "-d", "4", "--frames", "5",
                   "--traffic", "sensing", "--period", "100"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["delivery_ratio"] > 0

    def test_unit_disk_poisson(self, tmp_path, capsys):
        out = self.build(tmp_path)
        capsys.readouterr()
        rc = main(["simulate", str(out), "--topology", "unit-disk",
                   "--nodes", "16", "-d", "4", "--frames", "2",
                   "--traffic", "poisson", "--rate", "0.05", "--seed", "3"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["slots"] > 0
        assert 0.0 <= report["delivery_ratio"] <= 1.0

    def test_regular_topology(self, tmp_path, capsys):
        out = self.build(tmp_path)
        capsys.readouterr()
        rc = main(["simulate", str(out), "--topology", "regular",
                   "--nodes", "16", "-d", "4", "--frames", "1"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["min_link_throughput"] >= 1.0

    def test_non_square_grid_rejected(self, tmp_path, capsys):
        out = self.build(tmp_path)
        rc = main(["simulate", str(out), "--topology", "grid",
                   "--nodes", "15", "-d", "4"])
        assert rc == 2
        assert "square" in capsys.readouterr().err


class TestReport:
    def test_markdown_to_stdout(self, tmp_path, capsys):
        out = tmp_path / "s.json"
        main(["build", "-n", "12", "-d", "2", "--alpha-t", "2",
              "--alpha-r", "4", "-o", str(out)])
        capsys.readouterr()
        rc = main(["report", str(out), "-d", "2"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "# Schedule certificate" in text
        assert "TRANSPARENT" in text

    def test_markdown_to_file(self, tmp_path, capsys):
        out = tmp_path / "s.json"
        md = tmp_path / "cert.md"
        main(["build", "-n", "12", "-d", "2", "--alpha-t", "2",
              "--alpha-r", "4", "-o", str(out)])
        rc = main(["report", str(out), "-d", "2", "-o", str(md)])
        assert rc == 0
        assert "Schedule certificate" in md.read_text()

    def test_non_transparent_exit_code(self, tmp_path):
        from repro.core.schedule import Schedule
        from repro.core.serialization import save_schedule

        bad = Schedule.non_sleeping(5, [[0, 1], [2], [3]])
        path = tmp_path / "bad.json"
        save_schedule(bad, path)
        assert main(["report", str(path), "-d", "2"]) == 1


class TestFamilies:
    def test_table(self, capsys):
        assert main(["families", "-n", "20", "-d", "2"]) == 0
        out = capsys.readouterr().out
        for name in ("tdma", "polynomial", "steiner", "projective", "mols"):
            assert name in out


class TestExperiment:
    def test_list(self, capsys):
        assert main(["experiment", "list"]) == 0
        out = capsys.readouterr().out
        assert "thm3_sweep" in out
        assert "fig1_example" in out
        assert "random_schedule" not in out

    def test_run_table_experiment(self, capsys):
        assert main(["experiment", "thm3_sweep"]) == 0
        assert "Theorem 3" in capsys.readouterr().out

    def test_run_tuple_experiment(self, capsys):
        assert main(["experiment", "fig1_example"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_unknown_name(self, capsys):
        assert main(["experiment", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestProvision:
    @staticmethod
    def write_requests(tmp_path, lines):
        path = tmp_path / "requests.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_batch_to_file(self, tmp_path, capsys):
        from repro.core.serialization import schedule_from_dict

        inp = self.write_requests(tmp_path, [
            '{"n": 15, "d": 2, "max_duty": 0.4}',
            '{"n": 12, "d": 2, "max_duty": "1/2"}',
            '',  # blank lines are skipped
        ])
        out = tmp_path / "plans.jsonl"
        rc = main(["provision", "-i", str(inp), "-o", str(out),
                   "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        assert "provisioned 2/2" in capsys.readouterr().err
        docs = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(docs) == 2
        for doc in docs:
            assert not doc["from_cache"]
            sched = schedule_from_dict(doc["schedule"])
            assert str(sched.average_duty_cycle()) == doc["duty_cycle"]

    def test_second_run_hits_plan_cache(self, tmp_path, capsys):
        inp = self.write_requests(
            tmp_path, ['{"n": 12, "d": 2, "max_duty": 0.5}'])
        out = tmp_path / "plans.jsonl"
        argv = ["provision", "-i", str(inp), "-o", str(out),
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        assert main(argv) == 0
        doc = json.loads(out.read_text())
        assert doc["from_cache"]
        assert "1 plan-cache hits" in capsys.readouterr().err

    def test_no_cache_leaves_no_store(self, tmp_path, capsys):
        inp = self.write_requests(
            tmp_path, ['{"n": 12, "d": 2, "max_duty": 0.5}'])
        cache = tmp_path / "cache"
        rc = main(["provision", "-i", str(inp), "-o",
                   str(tmp_path / "plans.jsonl"), "--cache-dir", str(cache),
                   "--no-cache"])
        assert rc == 0
        assert not cache.exists()

    def test_stdout_output_and_no_schedules(self, tmp_path, capsys):
        inp = self.write_requests(
            tmp_path, ['{"n": 12, "d": 2, "max_duty": 0.5}'])
        rc = main(["provision", "-i", str(inp), "--no-cache",
                   "--no-schedules"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["family"]
        assert "schedule" not in doc

    def test_jobs_parallel_matches_sequential(self, tmp_path):
        inp = self.write_requests(tmp_path, [
            '{"n": 15, "d": 2, "max_duty": 0.4}',
            '{"n": 12, "d": 2, "max_duty": 0.5}',
        ])
        seq, par = tmp_path / "seq.jsonl", tmp_path / "par.jsonl"
        assert main(["provision", "-i", str(inp), "-o", str(seq),
                     "--no-cache", "--jobs", "1"]) == 0
        assert main(["provision", "-i", str(inp), "-o", str(par),
                     "--no-cache", "--jobs", "4"]) == 0
        assert seq.read_text() == par.read_text()

    def test_bad_json_line_is_reported(self, tmp_path, capsys):
        inp = self.write_requests(tmp_path, ['{"n": 12,'])
        rc = main(["provision", "-i", str(inp), "--no-cache"])
        assert rc == 2
        assert ":1:" in capsys.readouterr().err

    def test_infeasible_request_sets_error_and_exit_code(
            self, tmp_path, capsys):
        inp = self.write_requests(tmp_path, [
            '{"n": 15, "d": 2, "max_duty": 0.05}',
            '{"n": 12, "d": 2, "max_duty": 0.5}',
        ])
        rc = main(["provision", "-i", str(inp), "--no-cache"])
        assert rc == 1
        captured = capsys.readouterr()
        docs = [json.loads(line) for line in captured.out.splitlines()]
        assert "duty budget" in docs[0]["error"]
        assert docs[1]["family"]
        assert "provisioned 1/2" in captured.err

    def test_missing_input_file(self, tmp_path, capsys):
        rc = main(["provision", "-i", str(tmp_path / "nope.jsonl"),
                   "--no-cache"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestSimulateFaults:
    def build(self, tmp_path):
        out = tmp_path / "s.json"
        main(["build", "-n", "16", "-d", "4", "--alpha-t", "3",
              "--alpha-r", "6", "--family", "polynomial", "-o", str(out)])
        return out

    def test_link_loss_flag(self, tmp_path, capsys):
        out = self.build(tmp_path)
        capsys.readouterr()  # drop the build line
        rc = main(["simulate", str(out), "--topology", "grid",
                   "--nodes", "16", "-d", "4", "--frames", "2",
                   "--link-loss", "0.3", "--fault-seed", "7"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["link_losses"] > 0
        assert report["node_down_fraction"] == 0.0

    def test_fault_plan_file_with_outage(self, tmp_path, capsys):
        out = self.build(tmp_path)
        plan = tmp_path / "faults.json"
        plan.write_text(json.dumps({"node_outages": [[5, 0, None]]}))
        capsys.readouterr()
        rc = main(["simulate", str(out), "--topology", "grid",
                   "--nodes", "16", "-d", "4", "--frames", "1",
                   "--fault-plan", str(plan)])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["node_down_fraction"] == pytest.approx(1 / 16)

    def test_same_fault_seed_same_report(self, tmp_path, capsys):
        out = self.build(tmp_path)
        args = ["simulate", str(out), "--topology", "grid", "--nodes", "16",
                "-d", "4", "--frames", "2", "--link-loss", "0.2",
                "--node-crash-rate", "0.01", "--node-recover-rate", "0.1",
                "--fault-seed", "3"]
        capsys.readouterr()
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first


class TestProvisionFaults:
    @staticmethod
    def grid_digests():
        from repro.core.planner import (candidate_sources,
                                        duty_budget_fraction, duty_grid)
        from repro.service.provision import task_from_point
        points = duty_grid(12, 2, duty_budget_fraction(0.5),
                           candidate_sources(12, 2))
        return [task_from_point(p, 12, 2, False).key() for p in points]

    def test_stats_flag_emits_store_json(self, tmp_path, capsys):
        inp = tmp_path / "requests.jsonl"
        inp.write_text('{"n": 12, "d": 2, "max_duty": 0.5}\n')
        rc = main(["provision", "-i", str(inp), "-o",
                   str(tmp_path / "plans.jsonl"),
                   "--cache-dir", str(tmp_path / "cache"), "--stats"])
        assert rc == 0
        err = capsys.readouterr().err.splitlines()
        assert "; store:" in err[0]
        stats = json.loads(err[1])
        assert stats["stores"] > 0 and stats["corruptions"] == 0

    def test_lost_evaluation_degrades_with_exit_code_3(self, tmp_path,
                                                       capsys):
        inp = tmp_path / "requests.jsonl"
        inp.write_text('{"n": 12, "d": 2, "max_duty": 0.5}\n')
        victim = self.grid_digests()[0]
        plan = tmp_path / "faults.json"
        plan.write_text(json.dumps(
            {"targeted_worker_faults": {victim: ["error"] * 9}}))
        out = tmp_path / "plans.jsonl"
        rc = main(["provision", "-i", str(inp), "-o", str(out), "--no-cache",
                   "--no-schedules", "--max-retries", "0",
                   "--fault-plan", str(plan)])
        assert rc == 3
        captured = capsys.readouterr()
        doc = json.loads(out.read_text())
        assert doc["degraded"] is True
        assert doc["failed_tasks"] == {victim: "failed"}
        assert doc["family"]  # still answered from the survivors
        assert "1 degraded" in captured.err
        assert "1 failed" in captured.err

    def test_malformed_fault_plan_is_an_input_error(self, tmp_path, capsys):
        inp = tmp_path / "requests.jsonl"
        inp.write_text('{"n": 12, "d": 2, "max_duty": 0.5}\n')
        plan = tmp_path / "faults.json"
        plan.write_text(json.dumps({"link_los": 0.1}))
        rc = main(["provision", "-i", str(inp), "--no-cache",
                   "--fault-plan", str(plan)])
        assert rc == 2
        assert "unknown fields" in capsys.readouterr().err


class TestObservabilityFlags:
    """The global --log-*/--metrics-out/--trace-out/--profile flags."""

    REQUESTS = '{"n": 12, "d": 2, "max_duty": 0.5}\n'

    def provision(self, tmp_path, *extra):
        inp = tmp_path / "requests.jsonl"
        inp.write_text(self.REQUESTS)
        return main(["provision", "-i", str(inp),
                     "-o", str(tmp_path / "plans.jsonl"),
                     "--cache-dir", str(tmp_path / "cache"), *extra])

    def test_metrics_out_writes_valid_reconciling_snapshot(self, tmp_path):
        metrics = tmp_path / "m.json"
        assert self.provision(tmp_path, "--jobs", "2",
                              "--metrics-out", str(metrics)) == 0
        doc = json.loads(metrics.read_text())
        assert doc["format"] == "repro-metrics" and doc["version"] == 1
        completed = doc["counters"]["repro_runtime_tasks_completed_total"]
        total = sum(s["value"] for s in completed["series"])
        assert total > 0
        # every evaluated task landed in the store (plus the plan entry)
        writes = doc["counters"]["repro_store_writes_total"]["series"][0]
        assert writes["value"] == total + 1
        import sys
        from pathlib import Path
        sys.path.insert(0, str(Path(__file__).parent.parent / "tools"))
        try:
            from validate_metrics import validate
        finally:
            sys.path.pop(0)
        assert validate(doc) == []

    def test_trace_out_and_profile_cover_the_stages(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert self.provision(tmp_path, "--trace-out", str(trace),
                              "--profile") == 0
        names = {json.loads(line)["name"]
                 for line in trace.read_text().splitlines() if line}
        assert {"provision.plan", "provision.evaluate",
                "provision.store"} <= names
        # jobs=1 evaluates inline, so per-grid-point planner spans appear
        assert "planner.evaluate" in names
        err = capsys.readouterr().err
        assert "provision.evaluate" in err  # the --profile table
        assert "total_s" in err

    def test_json_log_format_emits_lifecycle_events(self, tmp_path, capsys):
        assert self.provision(tmp_path, "--log-format", "json") == 0
        events = []
        for line in capsys.readouterr().err.splitlines():
            try:
                events.append(json.loads(line)["event"])
            except (json.JSONDecodeError, KeyError):
                continue  # the human summary line
        assert "batch_started" in events
        assert "task_completed" in events
        assert "batch_finished" in events

    def test_log_level_silences_lifecycle_events(self, tmp_path, capsys):
        assert self.provision(tmp_path, "--log-format", "json",
                              "--log-level", "error") == 0
        assert "task_completed" not in capsys.readouterr().err

    def test_stats_routes_through_the_metrics_exporter(self, tmp_path,
                                                       capsys):
        assert self.provision(tmp_path, "--stats") == 0
        stats = json.loads(capsys.readouterr().err.splitlines()[1])
        # legacy aliases stay flat; the exporter view rides alongside
        assert stats["stores"] > 0
        inner = stats["metrics"]
        assert inner["format"] == "repro-metrics"
        writes = inner["counters"]["repro_store_writes_total"]["series"][0]
        assert writes["value"] == stats["stores"]

    def test_metrics_out_unwritable_path_is_an_error(self, tmp_path, capsys):
        rc = self.provision(tmp_path, "--metrics-out",
                            str(tmp_path / "missing" / "m.json"))
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_flags_exist_on_other_commands(self, tmp_path, capsys):
        out = tmp_path / "s.json"
        metrics = tmp_path / "m.json"
        rc = main(["plan", "-n", "12", "-d", "2", "--max-duty", "0.5",
                   "-o", str(out), "--metrics-out", str(metrics),
                   "--profile"])
        assert rc == 0
        doc = json.loads(metrics.read_text())
        assert doc["format"] == "repro-metrics"
        assert "planner.plan" in capsys.readouterr().err

    def test_simulate_exports_engine_metrics(self, tmp_path, capsys):
        out = tmp_path / "s.json"
        assert main(["build", "-n", "16", "-d", "4", "--alpha-t", "2",
                     "--alpha-r", "4", "-o", str(out)]) == 0
        metrics = tmp_path / "m.json"
        rc = main(["simulate", str(out), "--topology", "grid",
                   "--nodes", "16", "-d", "4", "--frames", "2",
                   "--metrics-out", str(metrics)])
        assert rc == 0
        doc = json.loads(metrics.read_text())
        assert "repro_sim_collisions_total" in doc["counters"]
        rate = doc["gauges"]["repro_sim_slots_per_second"]["series"][0]
        assert rate["value"] > 0


class TestObs:
    def _spans(self, tmp_path):
        spans = [
            {"name": "client.call", "start_s": 1.0, "duration_s": 0.5,
             "trace_id": "t" * 16, "span_id": "a" * 16, "parent_id": None,
             "pid": 1, "attrs": {"path": "/plan"}},
            {"name": "serve.request", "start_s": 1.1, "duration_s": 0.3,
             "trace_id": "t" * 16, "span_id": "b" * 16,
             "parent_id": "a" * 16, "pid": 2, "attrs": {}},
        ]
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(json.dumps(s) for s in spans) + "\n")
        return path

    def test_report_renders_the_trace_tree(self, tmp_path, capsys):
        rc = main(["obs", "report", str(self._spans(tmp_path))])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace " + "t" * 16 in out
        assert "client.call" in out and "serve.request" in out
        # The child is indented under its parent.
        lines = out.splitlines()
        client = next(li for li in lines if "client.call" in li)
        serve = next(li for li in lines if "serve.request" in li)
        assert len(serve) - len(serve.lstrip()) \
            > len(client) - len(client.lstrip())

    def test_report_needs_a_path(self, capsys):
        assert main(["obs", "report"]) == 2
        assert "error" in capsys.readouterr().err

    def test_slo_exits_nonzero_on_a_burned_objective(self, tmp_path,
                                                     capsys):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        counter = reg.counter("repro_serve_requests_total", "requests")
        for _ in range(90):
            counter.labels(code="200").inc()
        for _ in range(10):
            counter.labels(code="503").inc()
        snap = tmp_path / "metrics.json"
        reg.write_json(snap)
        rc = main(["obs", "slo", "--metrics", str(snap)])
        assert rc == 1
        report = json.loads(capsys.readouterr().out)
        assert report["format"] == "repro-slo"
        assert report["ok"] is False

    def test_slo_passes_on_a_healthy_snapshot(self, tmp_path, capsys):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("repro_serve_requests_total",
                    "requests").labels(code="200").inc()
        snap = tmp_path / "metrics.json"
        reg.write_json(snap)
        assert main(["obs", "slo", "--metrics", str(snap)]) == 0
        assert json.loads(capsys.readouterr().out)["ok"] is True

    def test_slo_honours_an_objectives_file(self, tmp_path, capsys):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        counter = reg.counter("jobs_total", "jobs")
        for _ in range(8):
            counter.labels(code="200").inc()
        counter.labels(code="500").inc()
        counter.labels(code="500").inc()
        snap = tmp_path / "metrics.json"
        reg.write_json(snap)
        objectives = tmp_path / "objectives.json"
        objectives.write_text(json.dumps([
            {"name": "jobs-ok", "kind": "availability",
             "metric": "jobs_total", "target": 0.9}]))
        rc = main(["obs", "slo", "--metrics", str(snap),
                   "--objectives", str(objectives)])
        assert rc == 1
        report = json.loads(capsys.readouterr().out)
        assert report["objectives"][0]["objective"]["name"] == "jobs-ok"

    def test_slo_requires_the_metrics_flag(self, capsys):
        assert main(["obs", "slo"]) == 2
        assert "error" in capsys.readouterr().err


class TestCallTrace:
    def test_trace_flag_prints_the_trace_id(self, capsys):
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
        rc = main(["call", "health", "--port", str(port), "--retries", "0",
                   "--trace"])
        assert rc == 4  # nothing listening: the call itself fails
        err = capsys.readouterr().err
        assert "trace_id " in err


class TestObsBenchDiff:
    def _results(self, tmp_path, value, name="results"):
        results = tmp_path / name
        results.mkdir()
        (results / "bench_x.json").write_text(json.dumps({
            "benchmark": "bench_x", "format": "repro-bench-summary",
            "version": 1,
            "results": [{"name": "t", "key": "t", "params": {},
                         "headline": {"metric": "mean_s", "value": value}}],
        }))
        return results

    def test_self_diff_against_history_passes(self, tmp_path, capsys):
        from repro.obs.bench import append_history

        results = self._results(tmp_path, 0.5)
        history = tmp_path / "history.jsonl"
        append_history(results, history, git_sha="sha", recorded_unix=1.0)
        rc = main(["obs", "bench-diff", "--baseline", str(history),
                   "--results-dir", str(results)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 compared, 0 regression(s)" in out

    def test_doctored_baseline_exits_one(self, tmp_path, capsys):
        baseline = self._results(tmp_path, 0.5, name="baseline")
        current = self._results(tmp_path, 2.0, name="current")
        rc = main(["obs", "bench-diff", "--baseline", str(baseline),
                   "--results-dir", str(current)])
        assert rc == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_json_report_is_machine_readable(self, tmp_path, capsys):
        baseline = self._results(tmp_path, 0.5, name="baseline")
        current = self._results(tmp_path, 0.5, name="current")
        rc = main(["obs", "bench-diff", "--json", "--baseline",
                   str(baseline), "--results-dir", str(current)])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True and doc["regressions"] == 0

    def test_per_metric_threshold_flag_tightens_the_gate(self, tmp_path,
                                                         capsys):
        baseline = self._results(tmp_path, 0.5, name="baseline")
        current = self._results(tmp_path, 0.7, name="current")
        assert main(["obs", "bench-diff", "--baseline", str(baseline),
                     "--results-dir", str(current)]) == 0
        capsys.readouterr()
        assert main(["obs", "bench-diff", "--baseline", str(baseline),
                     "--results-dir", str(current),
                     "--threshold-for", "mean_s=1.1"]) == 1

    def test_baseline_is_required(self, tmp_path, capsys):
        assert main(["obs", "bench-diff",
                     "--results-dir", str(tmp_path)]) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_empty_results_dir_is_an_error(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        history = tmp_path / "history.jsonl"
        append_args = self._results(tmp_path, 0.5)
        from repro.obs.bench import append_history
        append_history(append_args, history, git_sha="s", recorded_unix=1.0)
        assert main(["obs", "bench-diff", "--baseline", str(history),
                     "--results-dir", str(empty)]) == 2
        assert "sidecars" in capsys.readouterr().err


class TestSampleProfileFlag:
    def test_flag_writes_a_parseable_profile(self, tmp_path):
        from repro.obs.profile import parse_collapsed

        out = tmp_path / "s.json"
        profile = tmp_path / "build.collapsed"
        rc = main(["build", "-n", "16", "-d", "3", "--alpha-t", "3",
                   "--alpha-r", "6", "-o", str(out),
                   "--sample-profile", str(profile), "--sample-hz", "500"])
        assert rc == 0
        assert profile.exists()
        # A fast command may catch zero samples; the file must still be
        # valid (possibly empty) collapsed-stack input.
        parse_collapsed(profile.read_text())

    def test_bad_hz_is_rejected_before_running(self, tmp_path, capsys):
        profile = tmp_path / "p.collapsed"
        rc = main(["build", "-n", "12", "-d", "2", "--alpha-t", "2",
                   "--alpha-r", "4", "-o", str(tmp_path / "s.json"),
                   "--sample-profile", str(profile), "--sample-hz", "0"])
        assert rc == 2
        assert "--sample-hz" in capsys.readouterr().err
        assert not profile.exists()
