"""Parameter sweep runner."""

import pytest

from repro.analysis.sweeps import sweep


class TestSweep:
    def test_cartesian_product(self):
        records = sweep(lambda n, d: {"s": n + d}, n=[1, 2], d=[10, 20])
        assert len(records) == 4
        assert records[0] == {"n": 1, "d": 10, "s": 11}
        assert records[-1] == {"n": 2, "d": 20, "s": 22}

    def test_none_skips(self):
        records = sweep(lambda n: None if n % 2 else {"half": n // 2},
                        n=range(6))
        assert [r["n"] for r in records] == [0, 2, 4]

    def test_shadowing_rejected(self):
        with pytest.raises(ValueError, match="shadow"):
            sweep(lambda n: {"n": 1}, n=[1])

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            sweep(lambda: {})

    def test_order_is_row_major(self):
        records = sweep(lambda a, b: {}, a=[1, 2], b=["x", "y"])
        assert [(r["a"], r["b"]) for r in records] == \
            [(1, "x"), (1, "y"), (2, "x"), (2, "y")]
