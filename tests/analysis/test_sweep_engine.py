"""Determinism and fault regression tests for the sharded sweep engine."""

from __future__ import annotations

import json

import pytest

from repro.analysis.sweeps import (
    ROW_FORMAT,
    ROW_VERSION,
    ShardTask,
    SweepPoint,
    SweepRunner,
    SweepSpec,
    render_row,
)
from repro.faults import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.service.runtime import STATUS_QUARANTINED, RuntimeConfig

#: A small but non-trivial grid: two families, an infeasible point
#: (13 * 3 odd for a regular topology), two traffic modes, two seeds.
SPEC = SweepSpec(families=("tdma", "polynomial"), ns=(10, 13), ds=(3,),
                 traffics=("saturated", "poisson"), seeds=(0, 1), frames=2)


class TestSpec:
    def test_expand_row_major_and_dedup(self):
        spec = SweepSpec(families=("tdma",), ns=(4, 4, 6), ds=(2,),
                         seeds=(0, 1))
        points = spec.expand()
        assert points == [
            SweepPoint("tdma", 4, 2, "saturated", 0),
            SweepPoint("tdma", 4, 2, "saturated", 1),
            SweepPoint("tdma", 6, 2, "saturated", 0),
            SweepPoint("tdma", 6, 2, "saturated", 1),
        ]

    def test_round_trip(self):
        assert SweepSpec.from_dict(SPEC.to_dict()) == SPEC

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fields"):
            SweepSpec.from_dict({"famlies": ["tdma"]})

    @pytest.mark.parametrize("bad", [
        {"families": ["klingon"]},
        {"traffics": ["warp"]},
        {"topology": "moebius"},
        {"ns": []},
        {"alpha_t": 4},            # alpha_r missing
        {"rate": 0.0},
        {"frames": 0},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            SweepSpec.from_dict({**SPEC.to_dict(), **bad})

    def test_shard_key_is_content_addressed(self):
        points = tuple(SPEC.expand()[:3])
        a = ShardTask(SPEC, points, 0)
        b = ShardTask(SPEC, points, 7)         # index is not identity
        c = ShardTask(SPEC, points[:2], 0)
        assert a.key() == b.key()
        assert a.key() != c.key()
        assert len(a.key()) == 64


class TestDeterminism:
    @pytest.fixture(scope="class")
    def baseline(self):
        return SweepRunner(SPEC, jobs=1, shard_size=3).run()

    def test_one_row_per_point_in_grid_order(self, baseline):
        points = SPEC.expand()
        assert [row["point"] for row in baseline.rows] \
            == [p.to_dict() for p in points]
        assert baseline.complete

    def test_infeasible_points_become_error_rows(self, baseline):
        errors = [row for row in baseline.rows if "error" in row]
        assert errors, "the 13 * 3 odd regular points must be infeasible"
        assert all(row["point"]["n"] == 13 for row in errors)
        assert all("needs n*D even" in row["error"] for row in errors)
        for row in baseline.rows:
            assert row["format"] == ROW_FORMAT
            assert row["version"] == ROW_VERSION

    @pytest.mark.parametrize("jobs", [4, 8])
    def test_jobs_do_not_change_bytes(self, baseline, jobs):
        result = SweepRunner(SPEC, jobs=jobs, shard_size=3).run()
        assert result.to_jsonl() == baseline.to_jsonl()

    def test_shard_size_does_not_change_bytes(self, baseline):
        result = SweepRunner(SPEC, jobs=1, shard_size=1).run()
        assert result.to_jsonl() == baseline.to_jsonl()

    def test_rows_render_canonically(self, baseline):
        for row in baseline.rows:
            assert render_row(row) == json.dumps(
                row, sort_keys=True, separators=(",", ":"))


class TestCheckpointResume:
    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            SweepRunner(SPEC, resume=True)

    def test_killed_sweep_resumes_byte_identical(self, tmp_path):
        clean = SweepRunner(SPEC, jobs=1, shard_size=3).run()
        # "Kill" the sweep mid-run: one shard's every attempt crashes, so
        # its checkpoint is never written while the others complete.
        victim = clean.shard_digests[2]
        faults = FaultPlan(targeted_worker_faults=(
            (victim, ("crash",) * 8),))
        ckpt = tmp_path / "ckpt"
        killed = SweepRunner(SPEC, jobs=1, shard_size=3,
                             checkpoint_dir=ckpt,
                             config=RuntimeConfig(max_retries=0,
                                                  backoff_base=0.0),
                             faults=faults).run()
        assert not killed.complete
        written = {p.stem for p in ckpt.glob("*.jsonl")}
        assert victim not in written
        assert written == set(clean.shard_digests) - {victim}
        # The crashed shard degraded to deterministic error rows...
        dead_rows = [r for r in killed.rows if "shard failed" in
                     r.get("error", "")]
        assert len(dead_rows) == 3
        # ...and a resume recomputes only the missing shard, yielding
        # bytes identical to the never-killed run.
        resumed = SweepRunner(SPEC, jobs=2, shard_size=3,
                              checkpoint_dir=ckpt, resume=True).run()
        assert resumed.resumed_shards == len(clean.shard_digests) - 1
        assert resumed.to_jsonl() == clean.to_jsonl()

    def test_corrupt_checkpoint_is_recomputed(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        first = SweepRunner(SPEC, jobs=1, shard_size=3,
                            checkpoint_dir=ckpt).run()
        victim = ckpt / f"{first.shard_digests[0]}.jsonl"
        victim.write_text("not json\n")
        second = SweepRunner(SPEC, jobs=1, shard_size=3,
                             checkpoint_dir=ckpt, resume=True).run()
        assert second.resumed_shards == len(first.shard_digests) - 1
        assert second.to_jsonl() == first.to_jsonl()
        # The recompute healed the checkpoint on disk.
        assert victim.read_text() != "not json\n"

    def test_wrong_point_count_checkpoint_is_recomputed(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        first = SweepRunner(SPEC, jobs=1, shard_size=3,
                            checkpoint_dir=ckpt).run()
        victim = ckpt / f"{first.shard_digests[1]}.jsonl"
        lines = victim.read_text().splitlines()
        victim.write_text("\n".join(lines[:-1]) + "\n")
        second = SweepRunner(SPEC, jobs=1, shard_size=3,
                             checkpoint_dir=ckpt, resume=True).run()
        assert second.resumed_shards == len(first.shard_digests) - 1
        assert second.to_jsonl() == first.to_jsonl()


class TestQuarantine:
    def test_crashing_shard_leaves_others_intact(self):
        clean = SweepRunner(SPEC, jobs=2, shard_size=3).run()
        victim = clean.shard_digests[1]
        faults = FaultPlan(targeted_worker_faults=(
            (victim, ("crash",) * 10),))
        config = RuntimeConfig(max_retries=8, backoff_base=0.0,
                               backoff_cap=0.0, quarantine_after=2)
        chaotic = SweepRunner(SPEC, jobs=2, shard_size=3, config=config,
                              faults=faults,
                              registry=MetricsRegistry()).run()
        report = chaotic.reports[victim]
        assert report.status == STATUS_QUARANTINED
        assert not chaotic.complete
        # Every other shard's rows are byte-for-byte those of the clean
        # run; only the quarantined shard's points degraded.
        for clean_row, row in zip(clean.rows, chaotic.rows):
            if "shard quarantined" in row.get("error", ""):
                assert row["point"] in [p.to_dict() for p in SPEC.expand()]
            else:
                assert render_row(row) == render_row(clean_row)
        degraded = [r for r in chaotic.rows
                    if "shard quarantined" in r.get("error", "")]
        assert len(degraded) == 3
