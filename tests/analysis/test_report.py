"""Certification reports."""

from fractions import Fraction

import pytest

from repro.analysis.report import certification_report
from repro.core.construction import construct
from repro.core.nonsleeping import polynomial_schedule
from repro.core.schedule import Schedule


class TestCertification:
    def make(self):
        return construct(polynomial_schedule(25, 3), 3, 4, 8)

    def test_transparent_schedule(self):
        rep = certification_report(self.make(), 3)
        assert rep.transparent
        assert rep.violation is None
        assert rep.alpha_t == 4 and rep.alpha_r == 8
        assert rep.optimality_ratio == 1  # Theorem 8 equality case
        assert rep.minimum_throughput > 0
        assert rep.duty_min <= rep.average_duty_cycle <= rep.duty_max

    def test_markdown_rendering(self):
        md = certification_report(self.make(), 3).to_markdown()
        assert "# Schedule certificate" in md
        assert "TRANSPARENT" in md
        assert "provably optimal" in md
        assert "duty cycle" in md

    def test_non_transparent_schedule(self):
        bad = Schedule.non_sleeping(5, [[0, 1], [2], [3]])
        rep = certification_report(bad, 2)
        assert not rep.transparent
        assert rep.violation is not None
        md = rep.to_markdown()
        assert "NOT transparent" in md
        assert "Witness" in md

    def test_exact_latency_flag(self):
        sched = construct(polynomial_schedule(9, 2, q=3, k=1), 2, 2, 4)
        rep = certification_report(sched, 2, exact_latency=True)
        assert rep.worst_access_delay is not None
        assert 0 < rep.worst_access_delay <= rep.frame_delay_bound
        assert "access delay" in rep.to_markdown()

    def test_extras_rendered(self):
        rep = certification_report(self.make(), 3,
                                   extras={"campaign": "alpha"})
        assert "campaign: alpha" in rep.to_markdown()

    def test_ratio_is_exact_fraction(self):
        rep = certification_report(self.make(), 3)
        assert isinstance(rep.optimality_ratio, Fraction)

    def test_class_params_validated(self):
        with pytest.raises(ValueError):
            certification_report(self.make(), 30)
