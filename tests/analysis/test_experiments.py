"""Experiment entry points: every paper artefact's invariant must hold.

These are the assertions EXPERIMENTS.md reports; each test runs the
experiment at reduced scale and checks the *claim*, not just that it runs.
"""

import pytest

from repro.analysis.experiments import (
    balanced_energy_study,
    drift_robustness_study,
    dynamic_topology_study,
    energy_latency_study,
    fig1_example,
    fig2_construction,
    mobility_study,
    sim_validation,
    substrate_scale,
    thm1_equivalence,
    thm2_validation,
    thm3_sweep,
    thm4_sweep,
    thm8_optimality,
    thm9_min_throughput,
)


class TestFig1:
    def test_throughput_preserved_while_sleeping(self):
        table, info = fig1_example()
        assert info["all_links_equal"]
        assert all(r["equal"] for r in table.rows)
        assert info["duty_cycle_duty"] < info["duty_cycle_non_sleeping"]

    def test_duty_schedule_actually_sleeps(self):
        _, info = fig1_example()
        assert info["duty_cycle_duty"] == 0.5


class TestThm1:
    def test_requirements_agree(self):
        table = thm1_equivalence(trials=15)
        assert all(r["agree"] for r in table.rows)


class TestThm2:
    def test_closed_form_exact(self):
        table = thm2_validation(trials=8)
        assert all(r["equal"] for r in table.rows)


class TestThm3:
    def test_bound_structure(self):
        table = thm3_sweep(ns=(10, 16, 25), ds=(2, 3))
        assert all(r["maximizer_verified"] for r in table.rows)
        assert all(r["loose_dominates"] for r in table.rows)
        assert all(0 < float(r["thr_star"]) < 1 for r in table.rows)


class TestThm4:
    def test_bound_structure(self):
        table = thm4_sweep(n=20, d=3, alpha_ts=(1, 3, 6), alpha_rs=(2, 6))
        assert all(r["alpha_t_star"] <= r["alpha_t"] for r in table.rows)
        assert all(0 < float(r["fraction_of_general"]) <= 1
                   for r in table.rows)

    def test_linear_in_alpha_r(self):
        table = thm4_sweep(n=20, d=3, alpha_ts=(3,), alpha_rs=(2, 6))
        b2, b6 = (r["bound"] for r in table.rows)
        assert b6 == b2 * 3


class TestFig2:
    def test_all_families_verified(self):
        table = fig2_construction(n=12, d=2, alpha_t=2, alpha_r=4)
        for r in table.rows:
            assert r["alpha_caps_ok"]
            assert r["source_tt"] is True
            assert r["constructed_tt"] is True
            assert r["L_constructed"] == r["formula_exact"]
            assert r["formula_exact"] <= r["formula_bound"]

    def test_verify_skippable(self):
        table = fig2_construction(n=12, d=2, alpha_t=2, alpha_r=4,
                                  verify=False)
        assert all(r["source_tt"] == "skipped" for r in table.rows)


class TestThm8:
    def test_bounds_and_equality_case(self):
        table = thm8_optimality(n=25, d=3, alpha_r=6, alpha_ts=(2, 4))
        for r in table.rows:
            assert r["bound_holds"]
            if r["min_T"] >= r["alpha_t_star"]:
                assert r["optimal"]


class TestThm9:
    def test_bounds_hold(self):
        table = thm9_min_throughput(n=10, d=2, alpha_t=2, alpha_r=4)
        for r in table.rows:
            assert r["sharp_holds"]
            assert r["closed_holds"]
            assert float(r["thr_min_constructed"]) > 0  # still transparent


class TestSimValidation:
    def test_exact_match(self):
        table = sim_validation(n=12, d=3, alpha_t=3, alpha_r=5, frames=2)
        assert all(r["exact_match"] for r in table.rows)
        duty_row = next(r for r in table.rows if r["schedule"] == "constructed")
        assert duty_row["awake_fraction"] < 1.0


class TestEnergyLatency:
    def test_motivating_ordering(self):
        table = energy_latency_study(rows=4, cols=4, frames=20)
        rows = {r["scheme"]: r for r in table.rows}
        tdma = rows["always-on TDMA"]
        naive = rows["naive 1-of-k"]
        tt = rows["constructed TT"]
        # TDMA never collides; naive collides heavily; TT keeps delivery
        # high at a fraction of the awake time.
        assert tdma["collisions"] == 0
        assert naive["collisions"] > tt["collisions"]
        assert naive["delivery_ratio"] < tt["delivery_ratio"]
        assert tt["awake_fraction"] < 0.6 < tdma["awake_fraction"]
        assert tt["mj_per_delivered"] < tdma["mj_per_delivered"]


class TestBalanced:
    def test_balance_achieved(self):
        table = balanced_energy_study(frames=1)
        rows = {r["variant"]: r for r in table.rows}
        assert rows["balanced"]["tx_share_equal"]
        assert not rows["plain"]["tx_share_equal"]
        assert rows["balanced"]["jain_energy"] >= rows["plain"]["jain_energy"]


class TestSubstrate:
    def test_best_column_consistent(self):
        table = substrate_scale(ns=(10, 25), ds=(2, 3))
        for r in table.rows:
            lengths = {k: r[f"{k}_L"] for k in
                       ("tdma", "polynomial", "projective")}
            if r["steiner_L"] != "-":
                lengths["steiner"] = r["steiner_L"]
            assert r[f"{r['best']}_L"] == min(lengths.values())


class TestSplitRatio:
    def test_asymmetric_split_wins(self):
        from repro.analysis.experiments import split_ratio_study

        table = split_ratio_study(n=30, d=3, budget=12)
        equal = next(r for r in table.rows if r["equal_split"])
        best = next(r for r in table.rows if r["best_split"])
        assert best["alpha_r"] > best["alpha_t"]
        assert best["constructed_throughput"] > equal["constructed_throughput"]

    def test_bound_dominates_constructed(self):
        from repro.analysis.experiments import split_ratio_study

        table = split_ratio_study(n=20, d=2, budget=8)
        for r in table.rows:
            assert r["constructed_throughput"] <= r["bound"]


class TestDrift:
    def test_zero_offset_matches_theory(self):
        table = drift_robustness_study(frames=2, max_offsets=(0, 3))
        rows = {r["max_offset"]: r for r in table.rows}
        assert rows[0]["survival"] == 1.0
        assert rows[3]["survival"] < 1.0

    def test_odd_parameters_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="even"):
            drift_robustness_study(n=15, d=3)


class TestMobility:
    def test_all_epochs_guaranteed(self):
        table = mobility_study(epochs=3)
        assert len(table) == 3
        assert all(r["all_links_guaranteed"] for r in table.rows)
        assert all(r["max_degree"] <= 4 for r in table.rows)


class TestDynamic:
    def test_transparency_survives_churn(self):
        table = dynamic_topology_study(slots=4000)
        rows = {(r["scheme"], r["phase"]): r for r in table.rows}
        tt_after = rows[("constructed TT", "after")]
        col_before = rows[("d2-colouring", "before")]
        col_after = rows[("d2-colouring", "after")]
        assert tt_after["delivery_ratio"] > 0.95
        assert col_before["collisions"] == 0
        assert col_after["collisions"] > 0
        assert col_after["delivery_ratio"] <= col_before["delivery_ratio"]
