"""Result tables."""

from fractions import Fraction

import pytest

from repro.analysis.tables import Table


class TestTable:
    def test_row_and_render(self):
        t = Table("a", "b", title="demo")
        t.row(a=1, b=2.5)
        t.row(a=10, b=Fraction(1, 3))
        out = t.render()
        assert "demo" in out
        assert "a" in out and "b" in out
        assert "0.333333" in out
        assert len(out.splitlines()) == 5  # title, header, rule, 2 rows

    def test_column_access(self):
        t = Table("x", "y")
        t.row(x=1, y="p")
        t.row(x=2, y="q")
        assert t.column("x") == [1, 2]
        with pytest.raises(KeyError):
            t.column("z")

    def test_row_validation(self):
        t = Table("a", "b")
        with pytest.raises(ValueError, match="missing"):
            t.row(a=1)
        with pytest.raises(ValueError, match="extra"):
            t.row(a=1, b=2, c=3)

    def test_bool_rendering(self):
        t = Table("ok")
        t.row(ok=True)
        t.row(ok=False)
        assert "yes" in t.render()
        assert "no" in t.render()

    def test_extend(self):
        t = Table("v")
        t.extend([{"v": 1}, {"v": 2}])
        assert len(t) == 2

    def test_empty_render(self):
        t = Table("only")
        out = t.render()
        assert "only" in out

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("a", "a")

    def test_no_columns_rejected(self):
        with pytest.raises(ValueError):
            Table()

    def test_csv(self, tmp_path):
        t = Table("a", "b")
        t.row(a=1, b=Fraction(1, 2))
        path = tmp_path / "out.csv"
        t.to_csv(path)
        content = path.read_text()
        assert content.splitlines()[0] == "a,b"
        assert "0.5" in content

    def test_repr(self):
        assert "rows=0" in repr(Table("a"))
