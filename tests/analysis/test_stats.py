"""Statistical utilities."""

import numpy as np
import pytest

from repro.analysis.stats import (
    Estimate,
    replicate,
    t_confidence_interval,
    welch_t_test,
)


class TestConfidenceInterval:
    def test_degenerate_zero_variance(self):
        est = t_confidence_interval([3.0, 3.0, 3.0])
        assert est.mean == 3.0
        assert est.half_width == 0.0
        assert est.low == est.high == 3.0

    def test_known_small_sample(self):
        # mean 2, sd 1, n=4 -> sem 0.5; t(0.975, df=3) ~ 3.1824.
        est = t_confidence_interval([1.0, 2.0, 2.0, 3.0],
                                    confidence=0.95)
        assert est.mean == pytest.approx(2.0)
        assert est.half_width == pytest.approx(3.1824 * 0.8165 / 2, rel=1e-3)

    def test_coverage_monte_carlo(self):
        """~95% of intervals should cover the true mean."""
        rng = np.random.default_rng(0)
        hits = 0
        trials = 300
        for _ in range(trials):
            xs = rng.normal(10.0, 2.0, size=12)
            est = t_confidence_interval(xs)
            if est.low <= 10.0 <= est.high:
                hits += 1
        assert 0.90 <= hits / trials <= 0.99

    def test_needs_two_samples(self):
        with pytest.raises(ValueError, match=">= 2"):
            t_confidence_interval([1.0])

    def test_str(self):
        assert "±" in str(Estimate(1.0, 0.1, (0.9, 1.1)))


class TestReplicate:
    def test_collects_metrics(self):
        def run(seed):
            rng = np.random.default_rng(seed)
            return {"a": float(rng.normal(5.0)), "b": float(seed)}

        out = replicate(run, seeds=[0, 1, 2, 3])
        assert set(out) == {"a", "b"}
        assert out["b"].mean == pytest.approx(1.5)

    def test_mismatched_metrics_rejected(self):
        def run(seed):
            return {"a": 1.0} if seed == 0 else {"b": 1.0}

        with pytest.raises(ValueError, match="expected"):
            replicate(run, seeds=[0, 1])

    def test_needs_two_seeds(self):
        with pytest.raises(ValueError, match="seeds"):
            replicate(lambda s: {"a": 1.0}, seeds=[0])


class TestWelch:
    def test_clearly_different(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0.0, 1.0, size=30)
        b = rng.normal(5.0, 1.0, size=30)
        assert welch_t_test(a, b) < 1e-10

    def test_same_distribution(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0.0, 1.0, size=30)
        b = rng.normal(0.0, 1.0, size=30)
        assert welch_t_test(a, b) > 0.01

    def test_needs_samples(self):
        with pytest.raises(ValueError):
            welch_t_test([1.0], [1.0, 2.0])
