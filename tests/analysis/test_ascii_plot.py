"""Text-mode figure renderers."""

import pytest

from repro.analysis.ascii_plot import bar_chart, line_plot


class TestBarChart:
    def test_scaling(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10
        assert lines[0].startswith(" a |")  # labels right-justified

    def test_title(self):
        out = bar_chart(["x"], [1.0], title="demo")
        assert out.splitlines()[0] == "demo"

    def test_zero_values(self):
        out = bar_chart(["a", "b"], [0.0, 3.0], width=6)
        assert out.splitlines()[0].count("#") == 0

    def test_all_zero(self):
        out = bar_chart(["a"], [0.0])
        assert "#" not in out

    def test_validation(self):
        with pytest.raises(ValueError, match="labels"):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError, match="non-negative"):
            bar_chart(["a"], [-1.0])
        with pytest.raises(ValueError, match="nothing"):
            bar_chart([], [])


class TestLinePlot:
    def test_extremes_marked(self):
        out = line_plot([0, 1, 2], [0.0, 5.0, 10.0], width=11, height=5)
        lines = out.splitlines()
        # Max point top-right, min point bottom-left.
        assert lines[0].endswith("*")
        assert "*" in lines[4]
        assert "10" in lines[0]
        assert lines[4].lstrip().startswith("0")

    def test_title_and_axis_labels(self):
        out = line_plot([1, 10], [2, 4], title="curve")
        assert out.splitlines()[0] == "curve"
        assert "1" in out and "10" in out

    def test_log_scale(self):
        out = line_plot([0, 1, 2], [1.0, 10.0, 100.0], log_y=True,
                        width=10, height=5)
        # On a log axis the three points are evenly spaced vertically.
        rows = [i for i, line in enumerate(out.splitlines()) if "*" in line]
        assert len(rows) == 3
        assert rows[1] - rows[0] == rows[2] - rows[1]

    def test_log_requires_positive(self):
        with pytest.raises(ValueError, match="positive"):
            line_plot([0, 1], [0.0, 1.0], log_y=True)

    def test_flat_series(self):
        out = line_plot([0, 1, 2], [5.0, 5.0, 5.0], width=9, height=4)
        assert out.count("*") == 3

    def test_validation(self):
        with pytest.raises(ValueError, match="xs"):
            line_plot([1], [1, 2])
        with pytest.raises(ValueError, match="two points"):
            line_plot([1], [1])
