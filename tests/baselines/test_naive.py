"""Naive 1-of-k duty cycling baseline."""

import numpy as np
import pytest

from repro.baselines.naive import naive_duty_cycle
from repro.core.transparency import is_topology_transparent
from repro.simulation.engine import Simulator
from repro.simulation.topology import star
from repro.simulation.traffic import SaturatedTraffic


class TestStructure:
    def test_explicit_offsets(self):
        s = naive_duty_cycle(3, 4, offsets=[0, 1, 1])
        assert s.frame_length == 4
        assert s.recv(0) == {0}
        assert s.recv(1) == {1}
        assert s.tran(0) == {1, 2, 3}
        assert s.tran(1) == {0, 2, 3}

    def test_listen_fraction_is_one_over_k(self):
        s = naive_duty_cycle(6, 5, offsets=[0, 1, 2, 3, 4, 0])
        for x in range(6):
            assert s.recv_mask(x).bit_count() == 1
            assert s.tran_mask(x).bit_count() == 4

    def test_random_offsets_within_frame(self):
        s = naive_duty_cycle(20, 6, rng=np.random.default_rng(0))
        for x in range(20):
            assert s.recv_mask(x).bit_count() == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            naive_duty_cycle(3, 1)
        with pytest.raises(ValueError):
            naive_duty_cycle(3, 4, offsets=[0, 1])
        with pytest.raises(ValueError):
            naive_duty_cycle(3, 4, offsets=[0, 1, 4])


class TestBehaviour:
    def test_not_topology_transparent(self):
        """The cautionary point: shared wake slots destroy the guarantee."""
        s = naive_duty_cycle(6, 3, offsets=[0, 0, 0, 1, 1, 2])
        assert not is_topology_transparent(s, 2)

    def test_collision_concentration_at_shared_receiver(self):
        """Two leaves with packets for the hub always collide in the hub's
        single wake slot — the introduction's scenario, literally."""
        topo = star(3, 2)
        s = naive_duty_cycle(3, 4, offsets=[0, 1, 1])
        sim = Simulator(topo, s, SaturatedTraffic(topo))
        m = sim.run(frames=5)
        # Both leaves transmit in slot 0 (hub's wake slot) every frame.
        assert m.collisions[0] == 5
        assert m.successes.get((1, 0), 0) == 0
        assert m.successes.get((2, 0), 0) == 0
