"""Distance-2 colouring TDMA baseline."""

import pytest

from repro.baselines.coloring import coloring_schedule, distance2_coloring
from repro.simulation.engine import Simulator
from repro.simulation.topology import Topology, grid, ring, star
from repro.simulation.traffic import SaturatedTraffic


def assert_valid_d2_coloring(topo, colors):
    for x in range(topo.n):
        for y in topo.neighbors(x):
            assert colors[x] != colors[y]
            for z in topo.neighbors(y):
                if z != x:
                    assert colors[x] != colors[z]


class TestColoring:
    @pytest.mark.parametrize("topo", [ring(7), grid(4, 4), star(6, 5)])
    def test_distance2_valid(self, topo):
        assert_valid_d2_coloring(topo, distance2_coloring(topo))

    def test_color_count_reasonable(self):
        # A grid's square has max degree <= 12, so greedy uses <= 13 colours.
        colors = distance2_coloring(grid(5, 5))
        assert max(colors) + 1 <= 13

    def test_isolated_nodes(self):
        topo = Topology.from_edges(3, [])
        colors = distance2_coloring(topo)
        assert colors == [0, 0, 0]  # no constraints at all


class TestSchedule:
    def test_collision_free_on_own_topology(self):
        topo = grid(4, 4)
        sched = coloring_schedule(topo)
        sim = Simulator(topo, sched, SaturatedTraffic(topo))
        m = sim.run(frames=2)
        assert m.total_collisions() == 0
        # And every link is served every frame (like TDMA, but shorter).
        for x, y in topo.directed_links():
            assert m.successes.get((x, y), 0) >= 2

    def test_shorter_than_tdma(self):
        topo = grid(5, 5)
        assert coloring_schedule(topo).frame_length < topo.n

    def test_breaks_on_other_topology(self):
        """The non-transparency: a valid colouring for the ring collides
        once a chord appears."""
        before = ring(8)
        sched = coloring_schedule(before)
        after = Topology.from_edges(8, list(before.edges) + [(0, 4)])
        sim = Simulator(after, sched, SaturatedTraffic(after))
        sim2 = Simulator(before, sched, SaturatedTraffic(before))
        assert sim2.run(frames=2).total_collisions() == 0
        # The chord endpoints may now share a slot with a distance-2 node;
        # with saturated traffic any conflict shows up as collisions or
        # lost successes on some link.
        m_after = sim.run(frames=2)
        served = all(
            m_after.successes.get(link, 0) >= 2
            for link in after.directed_links()
        )
        assert m_after.total_collisions() > 0 or not served

    def test_padding_to_larger_n(self):
        topo = ring(5)
        sched = coloring_schedule(topo, n=8)
        assert sched.n == 8
        for x in range(5, 8):
            assert sched.tran_mask(x) == 0  # padding ids never transmit

    def test_n_too_small(self):
        with pytest.raises(ValueError):
            coloring_schedule(ring(5), n=4)
