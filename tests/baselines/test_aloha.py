"""Slotted p-persistent ALOHA baseline."""

import numpy as np
import pytest

from repro.baselines.aloha import AlohaSimulator
from repro.simulation.routing import sink_tree
from repro.simulation.topology import Topology, grid, ring, star
from repro.simulation.traffic import PeriodicSensingTraffic, PoissonTraffic


def make(topo, rate, p, seed=0, **kw):
    rng = np.random.default_rng(seed)
    traffic = PoissonTraffic(topo, rate, np.random.default_rng(seed + 1))
    return AlohaSimulator(topo, traffic, p, rng, **kw)


class TestAloha:
    def test_delivers_under_light_load(self):
        sim = make(ring(6), rate=0.01, p=0.2)
        m = sim.run_slots(4000)
        assert m.delivered > 0
        assert m.delivery_ratio() > 0.8

    def test_packet_conservation(self):
        sim = make(grid(3, 3), rate=0.05, p=0.3, seed=2)
        m = sim.run_slots(2000)
        assert m.generated == m.delivered + m.dropped + sim.pending_packets

    def test_collisions_under_contention(self):
        # A saturated star: many leaves talking at the hub must collide.
        topo = star(6, 5)
        sim = make(topo, rate=0.5, p=0.5, seed=3)
        m = sim.run_slots(1000)
        assert m.total_collisions() > 0

    def test_p_zero_never_transmits(self):
        sim = make(ring(4), rate=0.05, p=0.0, seed=4)
        m = sim.run_slots(500)
        assert m.delivered == 0
        assert sum(m.attempts.values()) == 0
        assert sim.pending_packets + m.dropped == m.generated

    def test_always_awake_energy(self):
        sim = make(ring(4), rate=0.01, p=0.2, seed=5)
        sim.run_slots(100)
        assert sim.energy.awake_fraction() == 1.0
        assert (sim.energy.wakeups == 1).all()

    def test_half_duplex(self):
        """Two mutually-transmitting neighbours cannot hear each other."""
        topo = Topology.from_edges(2, [(0, 1)])
        rng = np.random.default_rng(0)
        traffic = PoissonTraffic(topo, 0.9, np.random.default_rng(1))
        sim = AlohaSimulator(topo, traffic, p=1.0, rng=rng, queue_limit=500)
        m = sim.run_slots(200)
        # With p=1 both always talk once backlogged: no one ever receives.
        assert m.delivered < 10

    def test_multihop_routing(self):
        topo = grid(3, 3)
        rng = np.random.default_rng(6)
        traffic = PeriodicSensingTraffic(topo, sink=0, period=100)
        sim = AlohaSimulator(topo, traffic, p=0.15, rng=rng,
                             next_hops=sink_tree(topo, 0))
        m = sim.run_slots(5000)
        assert m.delivered > 0
        assert max(m.latencies) >= 2  # multi-hop paths exist

    def test_p_validated(self):
        with pytest.raises(ValueError):
            make(ring(4), rate=0.01, p=1.5)

    def test_no_guarantee_under_asymmetric_pressure(self):
        """The contrast with transparency: a busy neighbourhood can starve
        a link for a long stretch — ALOHA offers no per-frame promise."""
        topo = star(5, 4)
        rng = np.random.default_rng(9)
        traffic = PoissonTraffic(topo, 0.4, np.random.default_rng(10))
        sim = AlohaSimulator(topo, traffic, p=0.6, rng=rng, queue_limit=200)
        m = sim.run_slots(2000)
        # Under this load the hub's success rate per attempt collapses.
        rates = [m.link_success_rate(x, 0) for x in range(1, 5)]
        assert min(rates) < 0.5