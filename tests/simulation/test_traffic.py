"""Traffic generators."""

import numpy as np
import pytest

from repro.simulation.topology import grid, ring
from repro.simulation.traffic import (
    PeriodicSensingTraffic,
    PoissonTraffic,
    SaturatedTraffic,
)


class TestSaturated:
    def test_no_discrete_arrivals(self):
        tr = SaturatedTraffic(ring(5))
        assert tr.saturated
        assert tr.arrivals(0) == []
        assert tr.arrivals(100) == []


class TestPoisson:
    def test_destinations_are_neighbours(self):
        topo = ring(6)
        tr = PoissonTraffic(topo, rate=0.5, rng=np.random.default_rng(0))
        for slot in range(50):
            for src, dst in tr.arrivals(slot):
                assert dst in topo.neighbors(src)

    def test_rate_approximation(self):
        topo = grid(3, 3)
        rate = 0.2
        tr = PoissonTraffic(topo, rate=rate, rng=np.random.default_rng(1))
        total = sum(len(tr.arrivals(s)) for s in range(500))
        expected = rate * topo.n * 500
        assert 0.8 * expected < total < 1.2 * expected

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            PoissonTraffic(ring(4), rate=0.0, rng=np.random.default_rng(0))

    def test_not_saturated(self):
        assert not PoissonTraffic(ring(4), 0.1, np.random.default_rng(0)).saturated


class TestPeriodicSensing:
    def test_every_node_reports_once_per_period(self):
        topo = grid(3, 3)
        tr = PeriodicSensingTraffic(topo, sink=0, period=10)
        counts = {x: 0 for x in range(topo.n)}
        for slot in range(10):
            for src, dst in tr.arrivals(slot):
                assert dst == 0
                counts[src] += 1
        assert counts[0] == 0  # the sink does not report to itself
        assert all(counts[x] == 1 for x in range(1, topo.n))

    def test_staggered_phases(self):
        topo = grid(3, 3)
        tr = PeriodicSensingTraffic(topo, sink=0, period=4)
        # Node x fires when slot % period == x % period.
        for slot in range(4):
            srcs = {src for src, _ in tr.arrivals(slot)}
            for src in srcs:
                assert src % 4 == slot % 4

    def test_sink_validated(self):
        with pytest.raises(ValueError):
            PeriodicSensingTraffic(grid(2, 2), sink=4, period=5)

    def test_period_validated(self):
        with pytest.raises(ValueError):
            PeriodicSensingTraffic(grid(2, 2), sink=0, period=0)
