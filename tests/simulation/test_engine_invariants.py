"""Engine conservation and accounting invariants, property-based.

Whatever the schedule, topology and traffic, certain books must balance:
energy states sum to node-slots, per-link successes never exceed
attempts, collisions only occur where >= 2 eligible neighbours exist,
and queued packets are conserved.  Hypothesis drives random scenarios.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nonsleeping import tdma_schedule
from repro.simulation.energy import RadioState
from repro.simulation.engine import Simulator
from repro.simulation.topology import random_capped
from repro.simulation.traffic import PoissonTraffic, SaturatedTraffic
from tests.conftest import random_schedule_strategy


@st.composite
def scenario(draw):
    """A random (schedule, topology, seed) triple with matching sizes."""
    sched = draw(random_schedule_strategy(max_n=7, max_len=6))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    d_cap = draw(st.integers(min_value=2, max_value=sched.n - 1))
    topo = random_capped(sched.n, d_cap, p=0.5, rng=rng)
    return sched, topo, seed


@given(sc=scenario())
@settings(max_examples=30, deadline=None)
def test_energy_states_sum_to_node_slots(sc):
    sched, topo, _ = sc
    sim = Simulator(topo, sched, SaturatedTraffic(topo))
    slots = 2 * sched.frame_length
    sim.run_slots(slots)
    total = sum(int(v.sum()) for v in sim.energy.state_slots.values())
    assert total == slots * topo.n


@given(sc=scenario())
@settings(max_examples=30, deadline=None)
def test_successes_bounded_by_attempts(sc):
    sched, topo, _ = sc
    sim = Simulator(topo, sched, SaturatedTraffic(topo))
    m = sim.run_slots(2 * sched.frame_length)
    for link, successes in m.successes.items():
        assert successes <= m.attempts.get(link, 0)


@given(sc=scenario())
@settings(max_examples=25, deadline=None)
def test_queued_packet_conservation(sc):
    sched, topo, seed = sc
    rng = np.random.default_rng(seed + 1)
    sim = Simulator(topo, sched, PoissonTraffic(topo, 0.2, rng),
                    queue_limit=8)
    m = sim.run_slots(3 * sched.frame_length)
    assert m.generated == m.delivered + m.dropped + sim.pending_packets


@given(sc=scenario())
@settings(max_examples=25, deadline=None)
def test_collisions_require_two_eligible_neighbours(sc):
    """A collision at y needs >= 2 transmit-eligible neighbours in some slot."""
    sched, topo, _ = sc
    sim = Simulator(topo, sched, SaturatedTraffic(topo))
    m = sim.run_slots(sched.frame_length)
    for y, count in m.collisions.items():
        if count == 0:
            continue
        possible = False
        for i in range(sched.frame_length):
            eligible = sum(
                1 for x in topo.neighbors(y) if sched.tx[i] >> x & 1
            )
            if eligible >= 2:
                possible = True
                break
        assert possible, f"collision at {y} without two eligible neighbours"


@given(seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=20, deadline=None)
def test_saturated_run_is_deterministic(seed):
    """Saturated mode uses no randomness: identical runs, identical books."""
    rng = np.random.default_rng(seed)
    topo = random_capped(8, 3, p=0.5, rng=rng)
    sched = tdma_schedule(8)
    m1 = Simulator(topo, sched, SaturatedTraffic(topo)).run(frames=2)
    m2 = Simulator(topo, sched, SaturatedTraffic(topo)).run(frames=2)
    assert dict(m1.successes) == dict(m2.successes)
    assert dict(m1.collisions) == dict(m2.collisions)


@given(sc=scenario())
@settings(max_examples=20, deadline=None)
def test_transmit_slots_match_energy_accounting(sc):
    """Every recorded TRANSMIT slot corresponds to a real transmission:
    under saturation, tx-state slot counts equal eligible-and-connected
    slot counts."""
    sched, topo, _ = sc
    sim = Simulator(topo, sched, SaturatedTraffic(topo))
    frames = 2
    sim.run(frames=frames)
    for x in range(topo.n):
        expected = 0
        if topo.degree(x) > 0:
            expected = frames * sched.tran_mask(x).bit_count()
        assert sim.energy.state_slots[RadioState.TRANSMIT][x] == expected
