"""Sink trees and hop counts."""

import pytest

from repro.simulation.routing import hop_counts, next_hop_table, sink_tree
from repro.simulation.topology import Topology, grid, ring, star


class TestSinkTree:
    def test_parents_point_toward_sink(self):
        topo = grid(3, 3)
        parent = sink_tree(topo, 0)
        assert 0 not in parent
        assert len(parent) == topo.n - 1
        for child, par in parent.items():
            assert par in topo.neighbors(child)

    def test_paths_terminate_at_sink(self):
        topo = grid(4, 4)
        parent = sink_tree(topo, 5)
        for node in range(topo.n):
            if node == 5:
                continue
            x, steps = node, 0
            while x != 5:
                x = parent[x]
                steps += 1
                assert steps <= topo.n

    def test_bfs_gives_shortest_hops(self):
        topo = ring(8)
        counts = hop_counts(topo, 0)
        assert counts[4] == 4  # antipodal on the 8-ring
        assert counts[1] == 1
        assert counts[7] == 1

    def test_deterministic_tie_break(self):
        topo = grid(3, 3)
        assert sink_tree(topo, 0) == sink_tree(topo, 0)

    def test_unreachable_nodes_absent(self):
        topo = Topology.from_edges(4, [(0, 1)])
        parent = sink_tree(topo, 0)
        assert set(parent) == {1}
        counts = hop_counts(topo, 0)
        assert set(counts) == {0, 1}

    def test_sink_validated(self):
        with pytest.raises(ValueError):
            sink_tree(grid(2, 2), 7)

    def test_next_hop_alias(self):
        topo = star(5, 4)
        assert next_hop_table(topo, 0) == sink_tree(topo, 0)

    def test_hop_counts_consistent_with_parents(self):
        topo = grid(4, 3)
        parent = sink_tree(topo, 0)
        counts = hop_counts(topo, 0)
        for child, par in parent.items():
            assert counts[child] == counts[par] + 1
