"""Energy model and accounting."""

import pytest

from repro.simulation.energy import EnergyAccount, EnergyModel, RadioState


class TestModel:
    def test_default_ordering(self):
        m = EnergyModel()
        assert m.sleep_mj < m.tx_mj
        assert m.sleep_mj < m.rx_mj
        assert m.idle_mj == m.rx_mj  # idle listening costs like receiving

    def test_cost_dispatch(self):
        m = EnergyModel(tx_mj=1.0, rx_mj=2.0, idle_mj=3.0, sleep_mj=0.5)
        assert m.cost(RadioState.TRANSMIT) == 1.0
        assert m.cost(RadioState.RECEIVE) == 2.0
        assert m.cost(RadioState.IDLE) == 3.0
        assert m.cost(RadioState.SLEEP) == 0.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(tx_mj=-1.0)


class TestAccount:
    def make(self, n=3):
        return EnergyAccount(n, EnergyModel(tx_mj=2.0, rx_mj=1.0,
                                            idle_mj=1.0, sleep_mj=0.0))

    def test_charge_accumulates(self):
        acc = self.make()
        acc.charge(0, RadioState.TRANSMIT)
        acc.charge(0, RadioState.RECEIVE)
        acc.charge(1, RadioState.SLEEP)
        assert acc.spent_mj[0] == 3.0
        assert acc.spent_mj[1] == 0.0
        assert acc.total_mj() == 3.0
        assert acc.state_slots[RadioState.TRANSMIT][0] == 1

    def test_awake_fraction(self):
        acc = self.make(2)
        acc.charge(0, RadioState.TRANSMIT)
        acc.charge(1, RadioState.SLEEP)
        acc.charge(0, RadioState.SLEEP)
        acc.charge(1, RadioState.RECEIVE)
        assert acc.awake_fraction() == 0.5

    def test_awake_fraction_empty(self):
        assert self.make().awake_fraction() == 0.0

    def test_jain_even(self):
        acc = self.make(4)
        for x in range(4):
            acc.charge(x, RadioState.TRANSMIT)
        assert acc.jain_fairness() == pytest.approx(1.0)

    def test_jain_skewed(self):
        acc = self.make(4)
        for _ in range(10):
            acc.charge(0, RadioState.TRANSMIT)
        assert acc.jain_fairness() == pytest.approx(0.25)

    def test_jain_zero_spend(self):
        assert self.make().jain_fairness() == 1.0

    def test_lifetime(self):
        acc = self.make(2)
        for _ in range(10):
            acc.charge(0, RadioState.TRANSMIT)  # 2 mJ/slot
            acc.charge(1, RadioState.SLEEP)
        assert acc.lifetime_slots(200.0) == 100  # 200 mJ at 2 mJ/slot

    def test_lifetime_requires_history(self):
        with pytest.raises(ValueError, match="no slots"):
            self.make().lifetime_slots(1.0)

    def test_lifetime_zero_drain(self):
        acc = EnergyAccount(1, EnergyModel(sleep_mj=0.0))
        acc.charge(0, RadioState.SLEEP)
        assert acc.lifetime_slots(1.0) > 10**18

    def test_per_node_copy(self):
        acc = self.make(2)
        acc.charge(0, RadioState.TRANSMIT)
        vec = acc.per_node_mj()
        vec[0] = 99.0
        assert acc.spent_mj[0] == 2.0

    def test_wakeup_charge(self):
        acc = EnergyAccount(2, EnergyModel(wakeup_mj=0.5))
        acc.charge_wakeup(0)
        acc.charge_wakeup(0)
        assert acc.wakeups[0] == 2
        assert acc.wakeups[1] == 0
        assert acc.spent_mj[0] == 1.0


class TestWakeupAccounting:
    """Engine-level sleep->awake transition counting."""

    def test_transitions_counted(self):
        from repro.core.schedule import Schedule
        from repro.simulation.engine import Simulator
        from repro.simulation.topology import ring
        from repro.simulation.traffic import SaturatedTraffic

        topo = ring(3)
        # Node 0: awake slots {0, 2} (two wake transitions per frame);
        # node 1: awake slots {0, 1} (one transition per frame);
        # node 2: always asleep.
        sched = Schedule.from_sets(
            3, [[0], [], [0], []], [[1], [1], [], []])
        sim = Simulator(topo, sched, SaturatedTraffic(topo))
        frames = 5
        sim.run(frames=frames)
        assert sim.energy.wakeups[0] == 2 * frames
        assert sim.energy.wakeups[1] == frames
        assert sim.energy.wakeups[2] == 0

    def test_always_awake_wakes_once(self):
        from repro.core.nonsleeping import tdma_schedule
        from repro.simulation.engine import Simulator
        from repro.simulation.topology import ring
        from repro.simulation.traffic import SaturatedTraffic

        topo = ring(4)
        sim = Simulator(topo, tdma_schedule(4), SaturatedTraffic(topo))
        sim.run(frames=10)
        assert (sim.energy.wakeups == 1).all()  # non-sleeping: one startup

    def test_scattered_slots_cost_more_wakeups(self):
        """The batching argument: same duty cycle, different transitions."""
        from repro.core.schedule import Schedule
        from repro.simulation.engine import Simulator
        from repro.simulation.topology import ring
        from repro.simulation.traffic import SaturatedTraffic

        topo = ring(3)
        scattered = Schedule.from_sets(
            3, [[0], [], [0], [], [0], []], [[], [], [], [], [], []])
        batched = Schedule.from_sets(
            3, [[0], [0], [0], [], [], []], [[], [], [], [], [], []])
        s1 = Simulator(topo, scattered, SaturatedTraffic(topo))
        s2 = Simulator(topo, batched, SaturatedTraffic(topo))
        s1.run(frames=4)
        s2.run(frames=4)
        assert s1.energy.wakeups[0] == 3 * s2.energy.wakeups[0]
        assert s1.energy.total_mj() > s2.energy.total_mj()
