"""Property suite: vectorized engine == scalar reference == theory.

~200 randomized cases (seeded stdlib :mod:`random`, no hypothesis) over
random topologies in ``N_n^D`` and random valid schedules.  For each
case the saturated-mode per-frame per-link success counts from the
vectorized kernel must equal

* the analytic ``|T(x, y, S)|`` of :func:`repro.core.throughput.
  guaranteed_slots` with ``S`` the receiver's true other neighbours —
  the paper's theory/simulation bridge (experiment E8); and
* the pre-vectorization scalar path (:meth:`Simulator._slow_slot_step`),
  dictionary for dictionary, energy cell for energy cell.

Marked ``slow``: the fast tier (``-m "not slow"``) skips it, CI's full
matrix runs it.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.schedule import Schedule
from repro.core.throughput import guaranteed_slots
from repro.simulation.energy import RadioState
from repro.simulation.engine import Simulator
from repro.simulation.topology import Topology
from repro.simulation.traffic import SaturatedTraffic

pytestmark = pytest.mark.slow

CASES_PER_SEED = 25
SEEDS = range(8)  # 8 * 25 = 200 randomized cases


def random_topology(n: int, d: int, rnd: random.Random) -> Topology:
    """A random member of ``N_n^D``: random edges, greedily degree-capped."""
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    rnd.shuffle(pairs)
    degree = [0] * n
    edges = []
    for u, v in pairs:
        if rnd.random() < 0.4 and degree[u] < d and degree[v] < d:
            degree[u] += 1
            degree[v] += 1
            edges.append((u, v))
    return Topology.from_edges(n, edges)


def random_schedule(n: int, length: int, rnd: random.Random) -> Schedule:
    """A random valid schedule: each node transmits, listens or sleeps."""
    tx, rx = [], []
    for _ in range(length):
        t = r = 0
        for x in range(n):
            u = rnd.random()
            if u < 1 / 3:
                t |= 1 << x
            elif u < 2 / 3:
                r |= 1 << x
        tx.append(t)
        rx.append(r)
    return Schedule(n, tuple(tx), tuple(rx))


@pytest.mark.parametrize("seed", SEEDS)
def test_vectorized_equals_scalar_equals_theory(seed):
    rnd = random.Random(0xE8_000 + seed)
    for _ in range(CASES_PER_SEED):
        n = rnd.randint(2, 22)
        d = rnd.randint(1, max(1, n - 1))
        length = rnd.randint(1, 14)
        frames = rnd.randint(1, 4)
        topo = random_topology(n, d, rnd)
        sched = random_schedule(n, length, rnd)
        case = f"seed={seed} n={n} d={d} L={length} frames={frames}"

        fast = Simulator(topo, sched, SaturatedTraffic(topo),
                         instrument=False)
        assert fast._vector_eligible, case
        mf = fast.run(frames)

        # Theory: per-frame per-link successes are exactly |T(x, y, S)|
        # with S the receiver's true other-neighbour set.
        for x, y in topo.directed_links():
            others = tuple(sorted(topo.neighbors(y) - {x}))
            analytic = guaranteed_slots(sched, x, y, others).bit_count()
            measured = mf.successes.get((x, y), 0)
            assert measured == frames * analytic, f"{case} link=({x},{y})"
        # No phantom success keys off the links.
        links = set(topo.directed_links())
        assert set(mf.successes) <= links, case

        # Scalar reference: byte-for-byte the same bookkeeping.
        slow = Simulator(topo, sched, SaturatedTraffic(topo),
                         instrument=False, vectorize=False)
        for _ in range(frames * length):
            slow._slow_slot_step()
        ms = slow.metrics
        assert dict(ms.attempts) == dict(mf.attempts), case
        assert dict(ms.successes) == dict(mf.successes), case
        assert dict(ms.collisions) == dict(mf.collisions), case
        assert ms.slots == mf.slots, case
        np.testing.assert_allclose(slow.energy.spent_mj,
                                   fast.energy.spent_mj, err_msg=case)
        for state in RadioState:
            assert (slow.energy.state_slots[state]
                    == fast.energy.state_slots[state]).all(), case
        assert (slow.energy.wakeups == fast.energy.wakeups).all(), case
