"""The vectorized saturated-mode kernel against the scalar reference.

The fast path (``instrument=False`` + eligible run) must be an *exact*
replica of the scalar slot loop — same metric dictionaries, including
which keys exist, and same energy accounting down to the wakeup edges.
The randomized deep-dive lives in ``test_engine_property.py`` (slow
tier); these are the fast, targeted scenarios plus the uninstrumented
allocation contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.nonsleeping import tdma_schedule
from repro.core.schedule import Schedule
from repro.faults import FaultPlan
from repro.obs.metrics import MetricsRegistry, default_registry, set_default_registry
from repro.obs.tracing import Tracer, default_tracer, set_default_tracer
from repro.simulation.drift import ClockDrift
from repro.simulation.energy import RadioState
from repro.simulation.engine import Simulator
from repro.simulation.topology import grid, ring, star
from repro.simulation.traffic import PoissonTraffic, SaturatedTraffic


def _pair(topo, sched, **kwargs):
    """A (scalar, vectorized) simulator pair over the same scenario."""
    scalar = Simulator(topo, sched, SaturatedTraffic(topo),
                       instrument=False, vectorize=False, **kwargs)
    fast = Simulator(topo, sched, SaturatedTraffic(topo),
                     instrument=False, **kwargs)
    assert not scalar._vector_eligible
    assert fast._vector_eligible
    return scalar, fast


def _assert_equal(scalar: Simulator, fast: Simulator) -> None:
    ms, mf = scalar.metrics, fast.metrics
    assert dict(ms.attempts) == dict(mf.attempts)
    assert dict(ms.successes) == dict(mf.successes)
    assert dict(ms.collisions) == dict(mf.collisions)
    assert ms.slots == mf.slots
    np.testing.assert_allclose(scalar.energy.spent_mj, fast.energy.spent_mj)
    for state in RadioState:
        assert (scalar.energy.state_slots[state]
                == fast.energy.state_slots[state]).all()
    assert (scalar.energy.wakeups == fast.energy.wakeups).all()
    assert scalar._was_awake == fast._was_awake


class TestExactEquivalence:
    def test_ring_tdma(self):
        topo = ring(8)
        scalar, fast = _pair(topo, tdma_schedule(8))
        scalar.run(3)
        fast.run(3)
        _assert_equal(scalar, fast)

    def test_star_collisions_and_key_presence(self):
        # All leaves transmit together: the hub sees pure collisions.  The
        # scalar path never creates zero-count success keys — neither may
        # the vectorized one.
        topo = star(5, 4)
        sched = Schedule.from_sets(
            5, tx_sets=[[1, 2, 3, 4], [0]], rx_sets=[[0], [1, 2, 3, 4]])
        scalar, fast = _pair(topo, sched)
        scalar.run(3)
        fast.run(3)
        _assert_equal(scalar, fast)
        assert fast.metrics.collisions[0] == 3
        assert (1, 0) not in fast.metrics.successes
        assert set(fast.metrics.successes) == {(0, y) for y in (1, 2, 3, 4)}

    def test_grid_duty_cycled_energy(self):
        topo = grid(3, 3)
        # A sparse schedule with sleep slots exercises wakeup accounting.
        sched = Schedule.from_sets(
            9,
            tx_sets=[[0, 4], [], [8], [2, 6]],
            rx_sets=[[1, 3, 5], [0], [5, 7], [1, 7]])
        for idle_sleep in (True, False):
            scalar, fast = _pair(topo, sched,
                                 idle_transmitters_sleep=idle_sleep)
            scalar.run(4)
            fast.run(4)
            _assert_equal(scalar, fast)

    def test_mid_frame_start_offset(self):
        # run_slots leaves the simulator mid-frame; the kernel must roll
        # the eligibility matrices to the true starting position.
        topo = ring(6)
        sched = Schedule.from_sets(
            6,
            tx_sets=[[0], [1, 4], [2], [3]],
            rx_sets=[[1, 5], [0, 2, 5], [1, 3], [2, 4]])
        scalar, fast = _pair(topo, sched)
        scalar.run_slots(3)
        fast.run_slots(3)
        scalar.run(2)
        fast.run(2)
        _assert_equal(scalar, fast)

    def test_single_frame_wakeups_use_history(self):
        topo = ring(4)
        sched = Schedule.from_sets(
            4, tx_sets=[[0], []], rx_sets=[[1], []])
        scalar, fast = _pair(topo, sched)
        scalar.run(1)
        fast.run(1)
        _assert_equal(scalar, fast)
        # Everyone woke at most once from the initial all-asleep state.
        assert int(fast.energy.wakeups.max()) <= 1


class TestEligibilityGate:
    def test_instrumented_runs_stay_scalar(self):
        topo = ring(5)
        sim = Simulator(topo, tdma_schedule(5), SaturatedTraffic(topo))
        assert not sim._vector_eligible

    def test_ineligible_scenarios_fall_back(self):
        topo = ring(5)
        sched = tdma_schedule(5)
        rng = np.random.default_rng(0)
        ineligible = [
            Simulator(topo, sched, PoissonTraffic(topo, 0.05, rng),
                      instrument=False),
            Simulator(topo, sched, SaturatedTraffic(topo), instrument=False,
                      faults=FaultPlan(seed=1, link_loss=0.5)),
            Simulator(topo, sched, SaturatedTraffic(topo), instrument=False,
                      capture_probability=0.5, rng=rng),
            Simulator(topo, sched, SaturatedTraffic(topo), instrument=False,
                      drift=ClockDrift(offsets=(0, 1, 0, 0, 0))),
            Simulator(topo, sched, SaturatedTraffic(topo), instrument=False,
                      vectorize=False),
        ]
        for sim in ineligible:
            assert not sim._vector_eligible
        # ...and a fallback run still works end to end.
        metrics = ineligible[0].run(2)
        assert metrics.slots == 2 * sched.frame_length


class TestUninstrumented:
    @pytest.fixture()
    def fresh_defaults(self):
        registry, tracer = MetricsRegistry(), Tracer()
        old_registry = set_default_registry(registry)
        old_tracer = set_default_tracer(tracer)
        try:
            yield registry, tracer
        finally:
            set_default_registry(old_registry)
            set_default_tracer(old_tracer)

    def test_uninstrumented_run_touches_nothing(self, fresh_defaults):
        registry, tracer = fresh_defaults
        topo = ring(6)
        sim = Simulator(topo, tdma_schedule(6), SaturatedTraffic(topo),
                        instrument=False)
        sim.run(3)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert tracer.spans == []
        assert default_registry() is registry
        assert default_tracer() is tracer

    def test_uninstrumented_scalar_run_touches_nothing(self, fresh_defaults):
        registry, tracer = fresh_defaults
        topo = ring(6)
        sim = Simulator(topo, tdma_schedule(6), SaturatedTraffic(topo),
                        instrument=False, vectorize=False)
        sim.run(2)
        sim.run_slots(3)
        assert registry.snapshot()["counters"] == {}
        assert tracer.spans == []

    def test_instrumented_run_still_reports(self, fresh_defaults):
        registry, tracer = fresh_defaults
        topo = star(5, 4)
        sched = Schedule.from_sets(
            5, tx_sets=[[1, 2, 3, 4]], rx_sets=[[0]])
        sim = Simulator(topo, sched, SaturatedTraffic(topo))
        sim.run(2)
        snapshot = registry.snapshot()
        assert "repro_sim_collisions_total" in snapshot["counters"]
        assert [s.name for s in tracer.spans] == ["sim.frame", "sim.frame"]

    def test_slow_slot_step_is_the_scalar_reference(self):
        topo = ring(4)
        a = Simulator(topo, tdma_schedule(4), SaturatedTraffic(topo),
                      instrument=False, vectorize=False)
        b = Simulator(topo, tdma_schedule(4), SaturatedTraffic(topo),
                      instrument=False, vectorize=False)
        for _ in range(8):
            a.step()
            b._slow_slot_step()
        assert dict(a.metrics.successes) == dict(b.metrics.successes)
        assert a.metrics.slots == b.metrics.slots == 8
