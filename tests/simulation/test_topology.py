"""Topology wrapper and the N_n^D generators."""

import networkx as nx
import numpy as np
import pytest

from repro.simulation.topology import (
    Topology,
    grid,
    random_capped,
    random_tree,
    ring,
    star,
    unit_disk,
    worst_case_regular,
)


class TestTopology:
    def test_from_edges_normalizes(self):
        t = Topology.from_edges(3, [(2, 0), (1, 2)])
        assert t.edges == frozenset({(0, 2), (1, 2)})
        assert t.neighbors(2) == {0, 1}

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Topology.from_edges(3, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Topology.from_edges(3, [(0, 3)])

    def test_unsorted_edge_rejected_in_raw_ctor(self):
        with pytest.raises(ValueError, match="sorted"):
            Topology(3, frozenset({(2, 1)}))

    def test_degree_and_max_degree(self):
        t = Topology.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert t.degree(0) == 3
        assert t.degree(1) == 1
        assert t.max_degree == 3

    def test_directed_links(self):
        t = Topology.from_edges(3, [(0, 1)])
        assert t.directed_links() == [(0, 1), (1, 0)]

    def test_in_class(self):
        t = Topology.from_edges(4, [(0, 1), (1, 2)])
        assert t.in_class(4, 2)
        assert t.in_class(10, 3)
        assert not t.in_class(10, 2) or t.max_degree <= 2
        t.assert_in_class(4, 2)

    def test_assert_in_class_raises(self):
        t = Topology.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        with pytest.raises(ValueError, match="not"):
            t.assert_in_class(4, 2)

    def test_connectivity(self):
        assert ring(5).is_connected()
        assert not Topology.from_edges(4, [(0, 1)]).is_connected()

    def test_without_nodes(self):
        t = grid(3, 3)
        survived = t.without_nodes([4])  # kill the centre
        assert survived.n == 9
        assert survived.degree(4) == 0
        assert all(4 not in survived.neighbors(x) for x in range(9))
        # Remaining edges untouched.
        assert (0, 1) in survived.edges

    def test_without_nodes_validation(self):
        with pytest.raises(ValueError):
            grid(2, 2).without_nodes([4])

    def test_without_nodes_stays_in_class(self):
        t = grid(3, 3)
        assert t.without_nodes([0, 8]).in_class(9, 4)

    def test_networkx_roundtrip(self):
        t = grid(3, 3)
        g = t.to_networkx()
        assert Topology.from_networkx(g) == t

    def test_from_networkx_requires_contiguous_labels(self):
        g = nx.Graph()
        g.add_edge("a", "b")
        with pytest.raises(ValueError, match="0..n-1"):
            Topology.from_networkx(g)


class TestGenerators:
    def test_grid(self):
        t = grid(3, 4)
        assert t.n == 12
        assert t.max_degree <= 4
        assert t.is_connected()
        assert len(t.edges) == 3 * 3 + 2 * 4  # (cols-1)*rows + (rows-1)*cols

    def test_ring(self):
        t = ring(6)
        assert all(t.degree(x) == 2 for x in range(6))

    def test_star(self):
        t = star(8, 4)
        assert t.degree(0) == 4
        assert t.max_degree == 4
        assert t.in_class(8, 4)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_unit_disk_in_class(self, seed):
        rng = np.random.default_rng(seed)
        t = unit_disk(20, 4, radius=0.4, rng=rng)
        assert t.n == 20
        assert t.max_degree <= 4

    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_capped_in_class(self, seed):
        rng = np.random.default_rng(seed)
        t = random_capped(15, 3, p=0.5, rng=rng)
        assert t.max_degree <= 3

    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_tree(self, seed):
        rng = np.random.default_rng(seed)
        t = random_tree(12, 3, rng=rng)
        assert len(t.edges) == 11
        assert t.is_connected()
        assert t.max_degree <= 3

    def test_worst_case_regular(self):
        t = worst_case_regular(10, 3, seed=4)
        assert all(t.degree(x) == 3 for x in range(10))

    def test_worst_case_parity(self):
        with pytest.raises(ValueError, match="even"):
            worst_case_regular(9, 3)

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            random_capped(10, 3, p=1.5)
