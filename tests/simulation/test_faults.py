"""Deterministic fault injection in the simulator: crashes, loss, recovery."""

import pytest

from repro.core.construction import construct
from repro.core.nonsleeping import polynomial_schedule, tdma_schedule
from repro.faults import FaultPlan, WORKER_FAULT_KINDS, unit_hash
from repro.simulation.engine import Simulator
from repro.simulation.topology import grid
from repro.simulation.traffic import PoissonTraffic, SaturatedTraffic

import numpy as np


def _sched(n=16, d=4):
    return construct(polynomial_schedule(n, d), d, 4, 6)


class TestFaultPlanValidation:
    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(link_loss=1.5)
        with pytest.raises(ValueError):
            FaultPlan(node_crash_rate=-0.1)

    def test_rejects_rate_sum_above_one(self):
        with pytest.raises(ValueError, match="sum"):
            FaultPlan(worker_crash_rate=0.6, worker_error_rate=0.6)

    def test_rejects_unknown_worker_fault_kind(self):
        with pytest.raises(ValueError, match="unknown worker fault"):
            FaultPlan(targeted_worker_faults=(("abc", ("explode",)),))

    def test_rejects_empty_outage_interval(self):
        with pytest.raises(ValueError, match="empty outage"):
            FaultPlan(node_outages=((0, 10, 10),))

    def test_round_trip_and_unknown_fields(self):
        plan = FaultPlan(seed=7, link_loss=0.1, node_crash_rate=0.01,
                         node_recover_rate=0.2, node_outages=((3, 0, None),),
                         targeted_worker_faults=(("d" * 8, ("crash", "ok")),))
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        with pytest.raises(ValueError, match="unknown fields"):
            FaultPlan.from_dict({"link_los": 0.1})


class TestUnitHash:
    def test_stable_and_uniformish(self):
        assert unit_hash(1, "a", 2) == unit_hash(1, "a", 2)
        draws = [unit_hash(0, "u", i) for i in range(500)]
        assert all(0.0 <= u < 1.0 for u in draws)
        assert 0.4 < sum(draws) / len(draws) < 0.6

    def test_worker_fault_deterministic_per_attempt(self):
        plan = FaultPlan(seed=5, worker_crash_rate=0.25,
                         worker_error_rate=0.25)
        seq = [plan.worker_fault("deadbeef", a) for a in range(50)]
        assert seq == [plan.worker_fault("deadbeef", a) for a in range(50)]
        assert any(k == "crash" for k in seq)
        assert any(k is None for k in seq)
        assert set(k for k in seq if k) <= set(WORKER_FAULT_KINDS)

    def test_targeted_sequence_wins_then_runs_clean(self):
        plan = FaultPlan(worker_crash_rate=1.0, targeted_worker_faults=(
            ("t1", ("hang", "ok")),))
        assert plan.worker_fault("t1", 0) == "hang"
        assert plan.worker_fault("t1", 1) is None   # explicit "ok"
        assert plan.worker_fault("t1", 2) is None   # beyond sequence: clean
        assert plan.worker_fault("t2", 0) == "crash"  # rate applies to others


class TestNodeOutages:
    def test_dead_node_serves_no_links(self):
        sched = _sched()
        topo = grid(4, 4)
        sim = Simulator(topo, sched, SaturatedTraffic(topo),
                        faults=FaultPlan(node_outages=((5, 0, None),)))
        metrics = sim.run(frames=1)
        for x, y in topo.directed_links():
            if 5 in (x, y):
                assert metrics.successes.get((x, y), 0) == 0
            else:
                assert metrics.successes.get((x, y), 0) >= 1
        assert metrics.node_down_slots == metrics.slots
        assert metrics.node_down_fraction(topo.n) == pytest.approx(1 / 16)

    def test_recovered_node_rejoins_service(self):
        """Self-stabilization: after the outage ends, the untouched
        schedule serves the rebooted node's links again."""
        sched = _sched()
        topo = grid(4, 4)
        length = sched.frame_length
        sim = Simulator(topo, sched, SaturatedTraffic(topo),
                        faults=FaultPlan(node_outages=((5, 0, length),)))
        frame1 = sim.run(frames=1)
        assert all(frame1.successes.get((5, y), 0) == 0
                   for y in topo.neighbors(5))
        sim.run(frames=1)  # second frame: node 5 is back up
        for y in topo.neighbors(5):
            assert frame1.successes.get((5, y), 0) >= 1

    def test_stochastic_outages_are_seed_deterministic(self):
        sched = _sched()
        topo = grid(4, 4)
        plan = FaultPlan(seed=11, node_crash_rate=0.02,
                         node_recover_rate=0.1, link_loss=0.1)

        def run():
            sim = Simulator(topo, sched, SaturatedTraffic(topo), faults=plan)
            return sim.run(frames=2)

        a, b = run(), run()
        assert dict(a.successes) == dict(b.successes)
        assert a.node_down_slots == b.node_down_slots > 0
        assert a.link_losses == b.link_losses > 0

        other = Simulator(topo, sched, SaturatedTraffic(topo),
                          faults=FaultPlan(seed=12, node_crash_rate=0.02,
                                           node_recover_rate=0.1,
                                           link_loss=0.1)).run(frames=2)
        assert dict(other.successes) != dict(a.successes)


class TestLinkLoss:
    def test_total_loss_kills_every_reception(self):
        sched = _sched()
        topo = grid(4, 4)
        sim = Simulator(topo, sched, SaturatedTraffic(topo),
                        faults=FaultPlan(link_loss=1.0))
        metrics = sim.run(frames=1)
        assert sum(metrics.successes.values()) == 0
        assert metrics.link_losses > 0

    def test_partial_loss_degrades_gracefully(self):
        sched = _sched()
        topo = grid(4, 4)
        clean = Simulator(topo, sched, SaturatedTraffic(topo)).run(frames=2)
        lossy = Simulator(topo, sched, SaturatedTraffic(topo),
                          faults=FaultPlan(seed=1, link_loss=0.3)
                          ).run(frames=2)
        total_clean = sum(clean.successes.values())
        total_lossy = sum(lossy.successes.values())
        assert 0 < total_lossy < total_clean
        assert total_lossy + lossy.link_losses == total_clean

    def test_queued_mode_retransmits_lost_frames(self):
        """A lost unicast stays with its sender — loss costs latency,
        never packets (the receiver-aware requeue path)."""
        n, d = 9, 4
        sched = construct(tdma_schedule(n), d, 2, 4)
        topo = grid(3, 3)
        rng = np.random.default_rng(0)
        traffic = PoissonTraffic(topo, 0.01, rng)
        sim = Simulator(topo, sched, traffic,
                        faults=FaultPlan(seed=2, link_loss=0.5))
        metrics = sim.run(frames=30)
        assert metrics.link_losses > 0
        assert metrics.delivered > 0
        # Nothing vanished: every generated packet was delivered, is
        # dropped-by-queue-limit (none expected at this rate), or queued.
        assert metrics.generated == \
            metrics.delivered + metrics.dropped + sim.pending_packets

    def test_inactive_plan_costs_nothing(self):
        sched = _sched()
        topo = grid(4, 4)
        sim = Simulator(topo, sched, SaturatedTraffic(topo),
                        faults=FaultPlan())
        assert sim._faults is None
        metrics = sim.run(frames=1)
        assert metrics.link_losses == 0 and metrics.node_down_slots == 0
