"""Slot-event tracing."""

import numpy as np

from repro.core.nonsleeping import tdma_schedule
from repro.simulation.engine import Simulator
from repro.simulation.topology import ring, star
from repro.simulation.traffic import PoissonTraffic, SaturatedTraffic
from repro.simulation.trace import TraceRecorder
from repro.core.schedule import Schedule


class TestTraceRecorder:
    def test_records_every_slot(self):
        sim = Simulator(ring(4), tdma_schedule(4), SaturatedTraffic(ring(4)))
        trace = TraceRecorder(sim)
        trace.run(frames=2)
        assert len(trace.events) == 8
        assert [e.slot for e in trace.events] == list(range(8))

    def test_successes_match_metrics(self):
        topo = ring(5)
        sim = Simulator(topo, tdma_schedule(5), SaturatedTraffic(topo))
        trace = TraceRecorder(sim)
        trace.run(frames=1)
        per_trace = {}
        for e in trace.events:
            for link in e.successes:
                per_trace[link] = per_trace.get(link, 0) + 1
        assert per_trace == dict(sim.metrics.successes)

    def test_collisions_identified(self):
        topo = star(3, 2)
        sched = Schedule.non_sleeping(3, [[1, 2]])
        sim = Simulator(topo, sched, SaturatedTraffic(topo))
        trace = TraceRecorder(sim)
        trace.run(frames=2)
        assert all(e.collisions == (0,) for e in trace.events)
        assert all(set(e.transmitters) == {1, 2} for e in trace.events)

    def test_listeners_reported(self):
        sim = Simulator(ring(4), tdma_schedule(4), SaturatedTraffic(ring(4)))
        trace = TraceRecorder(sim)
        event = trace.step()
        assert event.listeners == (1, 2, 3)  # all but the slot-0 owner

    def test_ring_buffer_capacity(self):
        sim = Simulator(ring(4), tdma_schedule(4), SaturatedTraffic(ring(4)))
        trace = TraceRecorder(sim, capacity=5)
        trace.run_slots(12)
        assert len(trace.events) == 5
        assert trace.events[0].slot == 7  # oldest events evicted

    def test_csv_export(self, tmp_path):
        sim = Simulator(ring(4), tdma_schedule(4), SaturatedTraffic(ring(4)))
        trace = TraceRecorder(sim)
        trace.run(frames=1)
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        lines = path.read_text().splitlines()
        assert lines[0] == "slot,transmitters,listeners,successes,collisions"
        assert len(lines) == 5

    def test_jsonl_export_round_trips(self, tmp_path):
        topo = ring(5)
        sim = Simulator(topo, tdma_schedule(5), SaturatedTraffic(topo))
        trace = TraceRecorder(sim)
        trace.run(frames=2)
        path = tmp_path / "trace.jsonl"
        trace.to_jsonl(path)
        loaded = TraceRecorder.read_jsonl(path)
        assert loaded == list(trace.events)
        # lossless where CSV is stringly: ids stay ints, links stay pairs
        assert all(isinstance(e.slot, int) for e in loaded)
        assert all(isinstance(link, tuple) and len(link) == 2
                   for e in loaded for link in e.successes)

    def test_jsonl_lines_are_independent_json(self, tmp_path):
        import json

        sim = Simulator(ring(4), tdma_schedule(4), SaturatedTraffic(ring(4)))
        trace = TraceRecorder(sim)
        trace.run(frames=1)
        path = tmp_path / "trace.jsonl"
        trace.to_jsonl(path)
        lines = path.read_text().splitlines()
        assert len(lines) == len(trace.events)
        docs = [json.loads(line) for line in lines]
        assert [d["slot"] for d in docs] == [e.slot for e in trace.events]

    def test_queued_mode(self):
        topo = ring(4)
        rng = np.random.default_rng(0)
        sim = Simulator(topo, tdma_schedule(4), PoissonTraffic(topo, 0.2, rng))
        trace = TraceRecorder(sim)
        trace.run(frames=10)
        assert len(trace.events) == 40
        total = sum(len(e.successes) for e in trace.events)
        assert total == sum(sim.metrics.successes.values())
