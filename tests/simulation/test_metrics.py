"""Metrics bookkeeping."""

import math

import pytest

from repro.simulation.metrics import Metrics


class TestRecording:
    def test_counters(self):
        m = Metrics()
        m.record_attempt(0, 1)
        m.record_attempt(0, 1)
        m.record_success(0, 1)
        m.record_collision(1)
        assert m.attempts[(0, 1)] == 2
        assert m.successes[(0, 1)] == 1
        assert m.collisions[1] == 1
        assert m.total_collisions() == 1

    def test_delivery(self):
        m = Metrics()
        m.generated = 3
        m.record_delivery(5)
        m.record_delivery(15)
        assert m.delivered == 2
        assert m.delivery_ratio() == 2 / 3
        assert m.mean_latency() == 10.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Metrics().record_delivery(-1)


class TestReporting:
    def test_link_success_rate(self):
        m = Metrics()
        m.record_attempt(0, 1)
        m.record_attempt(0, 1)
        m.record_success(0, 1)
        assert m.link_success_rate(0, 1) == 0.5
        assert m.link_success_rate(1, 0) == 0.0

    def test_link_throughput(self):
        m = Metrics()
        m.slots = 20
        for _ in range(4):
            m.record_success(0, 1)
        assert m.link_throughput(0, 1, frame_length=10) == 2.0

    def test_min_mean_link_throughput(self):
        m = Metrics()
        m.slots = 10
        m.record_success(0, 1)
        links = [(0, 1), (1, 0)]
        assert m.min_link_throughput(links, 10) == 0.0
        assert m.mean_link_throughput(links, 10) == 0.5

    def test_percentiles(self):
        m = Metrics()
        for lat in range(1, 101):
            m.record_delivery(lat)
        assert m.latency_percentile(50) == pytest.approx(50.5)
        assert m.latency_percentile(95) == pytest.approx(95.05)

    def test_empty_latency_is_nan(self):
        m = Metrics()
        assert math.isnan(m.mean_latency())
        assert math.isnan(m.latency_percentile(50))

    def test_delivery_ratio_vacuous(self):
        assert Metrics().delivery_ratio() == 1.0

    def test_mean_link_throughput_empty(self):
        assert Metrics().mean_link_throughput([], 5) == 0.0
