"""The slot-synchronous engine: collision model, queues, energy, drift."""

import numpy as np
import pytest

from repro.core.construction import construct
from repro.core.nonsleeping import polynomial_schedule, tdma_schedule
from repro.core.schedule import Schedule
from repro.core.throughput import guaranteed_slots
from repro.simulation.drift import ClockDrift
from repro.simulation.energy import RadioState
from repro.simulation.engine import Simulator
from repro.simulation.routing import sink_tree
from repro.simulation.topology import Topology, grid, ring, star, worst_case_regular
from repro.simulation.traffic import (
    PeriodicSensingTraffic,
    PoissonTraffic,
    SaturatedTraffic,
)


class TestSaturatedMode:
    """Experiment E8's bridge: simulation == analysis, slot for slot."""

    @pytest.mark.parametrize("n,d,seed", [(10, 3, 0), (12, 4, 1), (14, 2, 2)])
    def test_per_link_successes_match_theory_nonsleeping(self, n, d, seed):
        topo = worst_case_regular(n, d, seed=seed)
        sched = polynomial_schedule(n, d)
        sim = Simulator(topo, sched, SaturatedTraffic(topo))
        frames = 2
        m = sim.run(frames=frames)
        for x, y in topo.directed_links():
            s = tuple(sorted(topo.neighbors(y) - {x}))
            analytic = guaranteed_slots(sched, x, y, s).bit_count()
            assert m.successes.get((x, y), 0) == frames * analytic

    def test_per_link_successes_match_theory_duty_cycled(self):
        n, d = 10, 3
        topo = worst_case_regular(n, d, seed=5)
        sched = construct(polynomial_schedule(n, d), d, 3, 5)
        sim = Simulator(topo, sched, SaturatedTraffic(topo))
        m = sim.run(frames=1)
        for x, y in topo.directed_links():
            s = tuple(sorted(topo.neighbors(y) - {x}))
            analytic = guaranteed_slots(sched, x, y, s).bit_count()
            assert m.successes.get((x, y), 0) == analytic

    def test_every_link_served_each_frame(self):
        """Topology transparency, observed: every link succeeds >= 1 per frame."""
        n, d = 9, 2
        topo = ring(n)
        sched = construct(polynomial_schedule(n, d), d, 2, 4)
        sim = Simulator(topo, sched, SaturatedTraffic(topo))
        m = sim.run(frames=1)
        for x, y in topo.directed_links():
            assert m.successes.get((x, y), 0) >= 1

    def test_collisions_recorded_at_hub(self):
        # Star with all leaves transmitting at once: the hub must log
        # collisions whenever >= 2 leaves share a slot.
        n = 5
        topo = star(n, 4)
        sched = Schedule.non_sleeping(n, [[1, 2, 3, 4]])
        sim = Simulator(topo, sched, SaturatedTraffic(topo))
        m = sim.run(frames=3)
        assert m.collisions[0] == 3  # hub collides in every slot
        assert m.successes.get((1, 0), 0) == 0


class TestQueuedMode:
    def test_packet_conservation(self):
        topo = grid(3, 3)
        sched = tdma_schedule(9)
        rng = np.random.default_rng(7)
        sim = Simulator(topo, sched, PoissonTraffic(topo, 0.05, rng))
        m = sim.run(frames=30)
        assert m.generated == m.delivered + m.dropped + sim.pending_packets

    def test_single_hop_delivery(self):
        topo = ring(4)
        sched = tdma_schedule(4)
        traffic = PeriodicSensingTraffic(topo, sink=0, period=40)
        sim = Simulator(topo, sched, traffic, next_hops=sink_tree(topo, 0))
        m = sim.run(frames=30)
        assert m.delivered > 0
        assert m.delivery_ratio() > 0.9

    def test_multi_hop_latency_reflects_hops(self):
        # A 1x6 line: node 5's reports must traverse 5 hops to sink 0.
        topo = grid(1, 6)
        sched = tdma_schedule(6)
        traffic = PeriodicSensingTraffic(topo, sink=0, period=120)
        sim = Simulator(topo, sched, traffic, next_hops=sink_tree(topo, 0))
        m = sim.run(frames=60)
        assert m.delivered > 0
        assert min(m.latencies) >= 1
        # 5 hops at >= 1 slot each for the farthest node.
        assert max(m.latencies) >= 5

    def test_queue_limit_drops(self):
        topo = star(3, 2)
        # A schedule in which nobody ever listens: queues can only grow.
        sched = Schedule.from_sets(3, [[0], [1], [2]], [[], [], []])
        rng = np.random.default_rng(1)
        sim = Simulator(topo, sched, PoissonTraffic(topo, 0.9, rng),
                        queue_limit=2)
        m = sim.run(frames=40)
        assert m.dropped > 0
        assert all(len(q) <= 2 for q in sim.queues)

    def test_unroutable_packet_dropped(self):
        topo = Topology.from_edges(4, [(0, 1), (2, 3)])  # two components
        sched = tdma_schedule(4)
        traffic = PeriodicSensingTraffic(topo, sink=0, period=10)
        sim = Simulator(topo, sched, traffic, next_hops=sink_tree(topo, 0))
        m = sim.run(frames=5)
        assert m.dropped > 0  # nodes 2,3 cannot reach the sink

    def test_receiver_aware_waits(self):
        """A sender holds its packet until the next hop's listen slot."""
        topo = Topology.from_edges(2, [(0, 1)])
        # Node 1 listens only in slot 3; node 0 may transmit in all slots.
        sched = Schedule.from_sets(
            2, [[0], [0], [0], [0]], [[], [], [], [1]])
        traffic = PeriodicSensingTraffic(topo, sink=1, period=4)
        sim = Simulator(topo, sched, traffic, next_hops={0: 1})
        m = sim.run(frames=3)
        assert m.delivered > 0
        # All attempts must have happened in slot 3 (success each time).
        assert m.attempts[(0, 1)] == m.successes[(0, 1)]


class TestEnergyAccounting:
    def test_sleepers_pay_sleep(self):
        topo = ring(4)
        sched = Schedule.from_sets(4, [[0]], [[1]])  # 2,3 always sleep
        sim = Simulator(topo, sched, SaturatedTraffic(topo))
        sim.run(frames=10)
        assert sim.energy.state_slots[RadioState.SLEEP][2] == 10
        assert sim.energy.state_slots[RadioState.SLEEP][3] == 10
        assert sim.energy.state_slots[RadioState.TRANSMIT][0] == 10
        assert sim.energy.state_slots[RadioState.RECEIVE][1] == 10

    def test_idle_transmitter_policy(self):
        topo = ring(4)
        sched = Schedule.from_sets(4, [[0]], [[1]])
        rng = np.random.default_rng(0)
        # No packets ever: transmit-eligible node idles or sleeps per policy.
        quiet = PoissonTraffic(topo, 1e-9, rng)
        sim_sleep = Simulator(topo, sched, quiet, idle_transmitters_sleep=True)
        sim_sleep.run(frames=5)
        assert sim_sleep.energy.state_slots[RadioState.SLEEP][0] == 5
        sim_idle = Simulator(topo, sched, quiet, idle_transmitters_sleep=False)
        sim_idle.run(frames=5)
        assert sim_idle.energy.state_slots[RadioState.IDLE][0] == 5

    def test_awake_fraction_matches_schedule(self):
        topo = ring(6)
        sched = construct(polynomial_schedule(6, 2), 2, 2, 2)
        sim = Simulator(topo, sched, SaturatedTraffic(topo))
        sim.run(frames=2)
        # Under saturation every eligible node acts, so the awake fraction
        # equals the schedule's average duty cycle exactly.
        assert sim.energy.awake_fraction() == \
            pytest.approx(float(sched.average_duty_cycle()))


class TestDrift:
    def test_zero_drift_is_default(self):
        topo = ring(5)
        sched = tdma_schedule(5)
        sim = Simulator(topo, sched, SaturatedTraffic(topo))
        assert sim.drift.is_synchronous

    def test_drift_can_break_service(self):
        """With offsets beyond any guard, links may lose their guarantee."""
        n = 6
        topo = ring(n)
        sched = tdma_schedule(n)
        aligned = Simulator(topo, sched, SaturatedTraffic(topo))
        total_aligned = sum(aligned.run(frames=2).successes.values())
        shifted = Simulator(
            topo, sched, SaturatedTraffic(topo),
            drift=ClockDrift.uniform(n, 3, rng=np.random.default_rng(3)))
        total_shifted = sum(shifted.run(frames=2).successes.values())
        assert total_shifted < total_aligned


class TestCapture:
    def test_default_is_paper_model(self):
        sim = Simulator(ring(4), tdma_schedule(4), SaturatedTraffic(ring(4)))
        assert sim.capture_probability == 0.0

    def test_capture_rescues_some_collisions(self):
        # All leaves share every slot: without capture the hub never hears
        # anyone; with certain capture it hears exactly one per slot.
        n = 5
        topo = star(n, 4)
        sched = Schedule.non_sleeping(n, [[1, 2, 3, 4]])
        no_cap = Simulator(topo, sched, SaturatedTraffic(topo))
        m0 = no_cap.run(frames=4)
        assert sum(m0.successes.get((x, 0), 0) for x in range(1, 5)) == 0
        cap = Simulator(topo, sched, SaturatedTraffic(topo),
                        capture_probability=1.0,
                        rng=np.random.default_rng(0))
        m1 = cap.run(frames=4)
        assert sum(m1.successes.get((x, 0), 0) for x in range(1, 5)) == 4
        assert m1.total_collisions() == 4  # still logged as collisions

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            Simulator(ring(4), tdma_schedule(4), SaturatedTraffic(ring(4)),
                      capture_probability=1.5)


class TestValidation:
    def test_schedule_must_cover_topology(self):
        with pytest.raises(ValueError, match="covers"):
            Simulator(ring(6), tdma_schedule(4), SaturatedTraffic(ring(6)))

    def test_run_parameters(self):
        sim = Simulator(ring(4), tdma_schedule(4), SaturatedTraffic(ring(4)))
        with pytest.raises(ValueError):
            sim.run(frames=0)
        with pytest.raises(ValueError):
            sim.run_slots(0)

    def test_slots_counted(self):
        sim = Simulator(ring(4), tdma_schedule(4), SaturatedTraffic(ring(4)))
        m = sim.run_slots(7)
        assert m.slots == 7
