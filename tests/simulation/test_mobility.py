"""Mobility models and schedule-invariant simulation across epochs."""

import numpy as np
import pytest

from repro.core.construction import construct
from repro.core.nonsleeping import polynomial_schedule
from repro.simulation.mobility import (
    EdgeChurnMobility,
    RandomWaypointMobility,
    run_with_mobility,
)
from repro.simulation.topology import grid
from repro.simulation.traffic import PeriodicSensingTraffic, SaturatedTraffic


class TestRandomWaypoint:
    def make(self, seed=0):
        return RandomWaypointMobility(n=12, d=3, radius=0.5, speed=0.1,
                                      rng=np.random.default_rng(seed))

    def test_snapshots_stay_in_class(self):
        mob = self.make()
        for topo in mob.trajectory(8):
            assert topo.n == 12
            assert topo.max_degree <= 3

    def test_positions_move(self):
        mob = self.make()
        before = mob._pos.copy()
        mob.step()
        assert not np.allclose(before, mob._pos)

    def test_positions_stay_in_unit_square(self):
        mob = self.make(seed=3)
        for _ in range(50):
            mob.step()
        assert (mob._pos >= 0).all() and (mob._pos <= 1).all()

    def test_topology_actually_changes(self):
        mob = RandomWaypointMobility(n=15, d=4, radius=0.35, speed=0.25,
                                     rng=np.random.default_rng(1))
        snaps = list(mob.trajectory(6))
        assert any(a.edges != b.edges for a, b in zip(snaps, snaps[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWaypointMobility(n=12, d=3, radius=-1.0, speed=0.1,
                                   rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            self.make().trajectory(0).__next__()


class TestEdgeChurn:
    def test_stays_in_class(self):
        mob = EdgeChurnMobility(grid(3, 3), d=4, churn=2,
                                rng=np.random.default_rng(0))
        for topo in mob.trajectory(10):
            assert topo.max_degree <= 4

    def test_churn_changes_edges(self):
        mob = EdgeChurnMobility(grid(3, 3), d=4, churn=3,
                                rng=np.random.default_rng(1))
        before = mob.snapshot().edges
        mob.step()
        assert mob.snapshot().edges != before

    def test_zero_churn_is_static(self):
        mob = EdgeChurnMobility(grid(3, 3), d=4, churn=0,
                                rng=np.random.default_rng(0))
        before = mob.snapshot().edges
        mob.step()
        assert mob.snapshot().edges == before

    def test_out_of_class_input_rejected(self):
        from repro.simulation.topology import star

        with pytest.raises(ValueError):
            EdgeChurnMobility(star(6, 5), d=2, churn=1,
                              rng=np.random.default_rng(0))


class TestRunWithMobility:
    def test_transparency_holds_across_epochs(self):
        """The headline property: one schedule, every epoch's topology
        fully served (saturated traffic, every link >= 1 success/frame)."""
        n, d = 12, 3
        sched = construct(polynomial_schedule(n, d), d, 3, 6)
        mob = RandomWaypointMobility(n=n, d=d, radius=0.5, speed=0.2,
                                     rng=np.random.default_rng(5))
        frames_per_epoch = 1

        seen = []

        class Recorder:
            def __call__(self, topo):
                seen.append(topo)
                return SaturatedTraffic(topo)

        metrics = run_with_mobility(
            sched, Recorder(), mob, epochs=4,
            slots_per_epoch=frames_per_epoch * sched.frame_length)
        assert len(seen) == 4
        # Each epoch contributed its own links; check the merged successes
        # cover every link of every epoch's topology at least once.
        for topo in seen:
            for x, y in topo.directed_links():
                assert metrics.successes.get((x, y), 0) >= 1

    def test_convergecast_across_churn(self):
        n, d = 9, 4
        sched = construct(polynomial_schedule(n, d), d, 3, 4)
        mob = EdgeChurnMobility(grid(3, 3), d=d, churn=1,
                                rng=np.random.default_rng(2))
        metrics = run_with_mobility(
            sched,
            lambda topo: PeriodicSensingTraffic(topo, sink=0, period=300),
            mob, epochs=3, slots_per_epoch=900, sink=0)
        assert metrics.generated > 0
        assert metrics.delivered > 0
        assert metrics.slots == 2700

    def test_parameter_validation(self):
        sched = construct(polynomial_schedule(9, 2, q=3, k=1), 2, 2, 4)
        mob = EdgeChurnMobility(grid(3, 3), d=4, churn=1,
                                rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            run_with_mobility(sched, SaturatedTraffic, mob, epochs=0,
                              slots_per_epoch=10)
