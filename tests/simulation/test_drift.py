"""Clock-drift probe."""

import numpy as np
import pytest

from repro.simulation.drift import ClockDrift


class TestClockDrift:
    def test_none_is_synchronous(self):
        d = ClockDrift.none(5)
        assert d.is_synchronous
        assert d.local_slot(2, 17, 10) == 7

    def test_uniform_bounds(self):
        d = ClockDrift.uniform(50, 3, rng=np.random.default_rng(0))
        assert all(-3 <= o <= 3 for o in d.offsets)
        assert len(d.offsets) == 50

    def test_uniform_zero_offset(self):
        d = ClockDrift.uniform(10, 0, rng=np.random.default_rng(0))
        assert d.is_synchronous

    def test_local_slot_wraps(self):
        d = ClockDrift((-2,))
        assert d.local_slot(0, 0, 10) == 8
        assert d.local_slot(0, 1, 10) == 9
        assert d.local_slot(0, 2, 10) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ClockDrift.none(0)
        with pytest.raises(ValueError):
            ClockDrift.uniform(5, -1)
        with pytest.raises(ValueError):
            ClockDrift((0,)).local_slot(0, -1, 10)
