"""Tests for the schedule provisioning service."""
