"""The persistent schedule store: keys, round trips, corruption handling."""

import json
import os
import subprocess
import sys
import threading
from fractions import Fraction
from pathlib import Path

import pytest

from repro.core.nonsleeping import mols_schedule
from repro.core.planner import GridPoint, evaluate_grid_point, plan_schedule
from repro.service.store import (
    ScheduleStore,
    default_cache_dir,
    eval_key,
    key_digest,
    plan_key,
)


@pytest.fixture
def store(tmp_path) -> ScheduleStore:
    """A store rooted in a fresh temporary directory."""
    return ScheduleStore(tmp_path / "cache")


def _some_plan(n=12, d=2, alpha_t=2, alpha_r=4):
    point = GridPoint("mols", mols_schedule(n, d), alpha_t, alpha_r)
    return evaluate_grid_point(point, d)


class TestKeys:
    def test_digest_is_canonical(self):
        a = eval_key("mols", 12, 2, 2, 4, False)
        b = dict(reversed(list(a.items())))  # same mapping, other order
        assert key_digest(a) == key_digest(b)

    def test_distinct_keys_distinct_digests(self):
        base = key_digest(eval_key("mols", 12, 2, 2, 4, False))
        assert key_digest(eval_key("mols", 12, 2, 2, 4, True)) != base
        assert key_digest(eval_key("tdma", 12, 2, 2, 4, False)) != base
        assert key_digest(plan_key(12, 2, Fraction(1, 2), False)) != base

    def test_key_stable_across_processes(self):
        """The digest must not depend on process state (hash seeds etc.)."""
        code = ("from repro.service.store import eval_key, key_digest; "
                "print(key_digest(eval_key('mols', 12, 2, 2, 4, False)))")
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}:{env.get('PYTHONPATH', '')}"
        env["PYTHONHASHSEED"] = "random"
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == \
            key_digest(eval_key("mols", 12, 2, 2, 4, False))

    def test_default_cache_dir_honours_xdg(self, tmp_path, monkeypatch):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_cache_dir() == tmp_path / "repro" / "schedules"


class TestRoundTrip:
    def test_miss_then_hit(self, store):
        assert store.get_eval("mols", 12, 2, 2, 4, False) is None
        assert store.stats.misses == 1
        plan = _some_plan()
        store.put_eval(plan.family, 12, 2, 2, 4, False, plan)
        got = store.get_eval(plan.family, 12, 2, 2, 4, False)
        assert got == plan
        assert store.stats.memory_hits == 1

    def test_round_trip_exact_fractions(self, store):
        plan = _some_plan()
        store.put_plan(12, 2, Fraction(1, 2), False, plan)
        fresh = ScheduleStore(store.cache_dir)  # cold memory, disk only
        got = fresh.get_plan(12, 2, Fraction(1, 2), False)
        assert got is not None
        assert got.throughput == plan.throughput
        assert got.duty_cycle == plan.duty_cycle
        assert got.schedule == plan.schedule
        assert fresh.stats.disk_hits == 1

    def test_entries_are_sharded_by_digest_prefix(self, store):
        plan = _some_plan()
        store.put_eval(plan.family, 12, 2, 2, 4, False, plan)
        path = store.entry_path(eval_key(plan.family, 12, 2, 2, 4, False))
        assert path.is_file()
        assert path.parent.name == path.stem[:2]

    def test_len_and_clear(self, store):
        plan = _some_plan()
        store.put_eval(plan.family, 12, 2, 2, 4, False, plan)
        store.put_plan(12, 2, Fraction(1, 2), False, plan)
        assert len(store) == 2
        assert store.clear() == 2
        assert len(store) == 0
        assert store.get_eval(plan.family, 12, 2, 2, 4, False) is None


class TestCorruption:
    def test_corrupt_entry_is_evicted_not_fatal(self, store):
        plan = _some_plan()
        key = eval_key(plan.family, 12, 2, 2, 4, False)
        store.put_eval(plan.family, 12, 2, 2, 4, False, plan)
        store.entry_path(key).write_text("{ not json")
        fresh = ScheduleStore(store.cache_dir)
        assert fresh.get_eval(plan.family, 12, 2, 2, 4, False) is None
        assert fresh.stats.evictions == 1
        assert not store.entry_path(key).exists()
        # The slot is reusable after eviction.
        fresh.put_eval(plan.family, 12, 2, 2, 4, False, plan)
        assert fresh.get_eval(plan.family, 12, 2, 2, 4, False) == plan

    def test_key_mismatch_is_evicted(self, store):
        plan = _some_plan()
        key = eval_key(plan.family, 12, 2, 2, 4, False)
        other = eval_key("tdma", 12, 2, 2, 4, False)
        store.put_eval("tdma", 12, 2, 2, 4, False, plan)
        # Copy the tdma entry into the slot the mols key hashes to.
        path = store.entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(store.entry_path(other).read_text())
        fresh = ScheduleStore(store.cache_dir)
        assert fresh.get_eval(plan.family, 12, 2, 2, 4, False) is None
        assert fresh.stats.evictions == 1

    def test_semantically_invalid_payload_is_evicted(self, store):
        plan = _some_plan()
        key = eval_key(plan.family, 12, 2, 2, 4, False)
        store.put_eval(plan.family, 12, 2, 2, 4, False, plan)
        doc = json.loads(store.entry_path(key).read_text())
        doc["plan"]["frame_length"] = 999  # disagrees with the slot tables
        store.entry_path(key).write_text(json.dumps(doc))
        fresh = ScheduleStore(store.cache_dir)
        assert fresh.get_eval(plan.family, 12, 2, 2, 4, False) is None
        assert fresh.stats.evictions == 1


class TestMemoryFront:
    def test_lru_is_bounded(self, tmp_path):
        store = ScheduleStore(tmp_path / "cache", memory_slots=2)
        plan = _some_plan()
        for alpha_r in (3, 4, 5):
            store.put_eval(plan.family, 12, 2, 2, alpha_r, False, plan)
        assert len(store._memory) == 2
        assert len(store) == 3  # disk keeps everything

    def test_disk_hit_promotes_to_memory(self, store):
        plan = _some_plan()
        store.put_eval(plan.family, 12, 2, 2, 4, False, plan)
        fresh = ScheduleStore(store.cache_dir)
        fresh.get_eval(plan.family, 12, 2, 2, 4, False)
        fresh.get_eval(plan.family, 12, 2, 2, 4, False)
        assert fresh.stats.disk_hits == 1
        assert fresh.stats.memory_hits == 1


class TestConcurrency:
    """The store under the serve worker pool: many threads, one store."""

    def test_racing_writers_leave_a_readable_entry(self, store):
        plan = _some_plan()
        barrier = threading.Barrier(4)
        failures = []

        def writer():
            try:
                barrier.wait(timeout=10)
                for _ in range(25):
                    store.put_eval(plan.family, 12, 2, 2, 4, False, plan)
            except Exception as exc:  # noqa: BLE001 - reported below
                failures.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert failures == []
        # Both layers agree and the payload is intact.
        assert store.get_eval(plan.family, 12, 2, 2, 4, False) == plan
        fresh = ScheduleStore(store.cache_dir)  # disk only
        assert fresh.get_eval(plan.family, 12, 2, 2, 4, False) == plan

    def test_readers_race_writers_without_corruption(self, store):
        plan = _some_plan()
        stop = threading.Event()
        failures = []

        def writer():
            try:
                while not stop.is_set():
                    store.put_eval(plan.family, 12, 2, 2, 4, False, plan)
            except Exception as exc:  # noqa: BLE001
                failures.append(exc)

        def reader():
            try:
                for _ in range(200):
                    got = store.get_eval(plan.family, 12, 2, 2, 4, False)
                    # A reader sees either a miss (before the first write
                    # lands) or the exact plan — never a torn value.
                    assert got is None or got == plan
            except Exception as exc:  # noqa: BLE001
                failures.append(exc)

        threads = [threading.Thread(target=writer)] \
            + [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads[1:]:
            t.join(timeout=30)
        stop.set()
        threads[0].join(timeout=30)
        assert failures == []

    def test_reader_during_eviction_does_not_crash(self, store):
        """Concurrent readers of a corrupt entry: one evicts, none crash."""
        plan = _some_plan()
        key = eval_key(plan.family, 12, 2, 2, 4, False)
        failures = []
        results = []

        def reader(s):
            try:
                results.append(s.get_eval(plan.family, 12, 2, 2, 4, False))
            except Exception as exc:  # noqa: BLE001
                failures.append(exc)

        for _ in range(10):
            store.put_eval(plan.family, 12, 2, 2, 4, False, plan)
            store.entry_path(key).write_text("{ not json")
            fresh = ScheduleStore(store.cache_dir)  # cold memory front
            threads = [threading.Thread(target=reader, args=(fresh,))
                       for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        assert failures == []
        assert all(r is None for r in results)  # corrupt == miss, always

    def test_lru_trim_races_hot_gets(self, tmp_path):
        """A tiny LRU being trimmed by writers must not break readers."""
        store = ScheduleStore(tmp_path / "cache", memory_slots=2)
        plans = {alpha_r: _some_plan(alpha_r=alpha_r)
                 for alpha_r in (3, 4, 5, 6)}
        for alpha_r, plan in plans.items():
            store.put_eval(plan.family, 12, 2, 2, alpha_r, False, plan)
        failures = []

        def churn():
            try:
                for _ in range(50):
                    for alpha_r, plan in plans.items():
                        store.put_eval(plan.family, 12, 2, 2, alpha_r,
                                       False, plan)
                        got = store.get_eval(plan.family, 12, 2, 2,
                                             alpha_r, False)
                        assert got == plan
            except Exception as exc:  # noqa: BLE001
                failures.append(exc)

        threads = [threading.Thread(target=churn) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert failures == []
        assert len(store._memory) <= 2


class TestPlannerIntegration:
    def test_warm_plan_schedule_does_zero_constructions(
            self, store, monkeypatch):
        cold = plan_schedule(12, 2, max_duty=0.5, cache=store)
        calls = []
        import repro.core.planner as planner_mod
        real = planner_mod.construct_detailed
        monkeypatch.setattr(planner_mod, "construct_detailed",
                            lambda *a, **kw: calls.append(a) or real(*a, **kw))
        warm = plan_schedule(12, 2, max_duty=0.5, cache=store)
        assert calls == []
        assert warm == cold

    def test_eval_entries_shared_across_budgets(self, store, monkeypatch):
        """A new budget reuses every grid point it shares with an old one."""
        plan_schedule(12, 2, max_duty=0.5, cache=store)
        stores_before = store.stats.stores
        import repro.core.planner as planner_mod
        real = planner_mod.construct_detailed
        calls = []
        monkeypatch.setattr(planner_mod, "construct_detailed",
                            lambda *a, **kw: calls.append(a) or real(*a, **kw))
        plan_schedule(12, 2, max_duty=0.4, cache=store)
        # The 0.4 grid is a subset of the 0.5 grid points with smaller
        # alpha_R caps; only genuinely new (alpha_T, alpha_R) pairs build.
        assert len(calls) < stores_before

    def test_custom_families_bypass_cache(self, store):
        from repro.core.nonsleeping import tdma_schedule

        plan_schedule(10, 2, max_duty=0.6,
                      families=[("tdma", tdma_schedule(10))], cache=store)
        assert len(store) == 0


class TestStats:
    def test_corruption_counters_and_audit_trail(self, store):
        plan = _some_plan()
        key = eval_key(plan.family, 12, 2, 2, 4, False)
        store.put_eval(plan.family, 12, 2, 2, 4, False, plan)
        store.entry_path(key).write_text("{ not json")
        fresh = ScheduleStore(store.cache_dir)
        assert fresh.get_eval(plan.family, 12, 2, 2, 4, False) is None
        stats = fresh.stats
        assert stats.corruptions == 1
        assert stats.evictions == 1
        assert stats.misses == 1  # a corrupt entry still counts as a miss
        assert stats.last_corruption is not None
        assert key_digest(key)[:4] in stats.last_corruption

    def test_hits_property_sums_both_layers(self, store):
        plan = _some_plan()
        store.put_eval(plan.family, 12, 2, 2, 4, False, plan)
        fresh = ScheduleStore(store.cache_dir)
        fresh.get_eval(plan.family, 12, 2, 2, 4, False)  # disk
        fresh.get_eval(plan.family, 12, 2, 2, 4, False)  # memory
        assert fresh.stats.hits == 2
        assert fresh.stats.hits == \
            fresh.stats.memory_hits + fresh.stats.disk_hits

    def test_to_dict_snapshot(self, store):
        plan = _some_plan()
        store.put_eval(plan.family, 12, 2, 2, 4, False, plan)
        store.get_eval(plan.family, 12, 2, 2, 4, False)
        store.get_eval("tdma", 12, 2, 2, 4, False)
        doc = store.stats.to_dict()
        assert doc["stores"] == 1 and doc["hits"] == 1 and doc["misses"] == 1
        assert doc["corruptions"] == 0 and doc["last_corruption"] is None
        assert set(doc) == {"memory_hits", "disk_hits", "hits", "misses",
                            "stores", "corruptions", "evictions",
                            "last_corruption"}
        json.dumps(doc)  # the snapshot is JSON-serializable as promised


class TestQuarantine:
    """Corrupt entries are preserved for post-mortem, never silently lost."""

    def test_corrupt_load_moves_the_entry_into_quarantine(self, store):
        plan = _some_plan()
        key = eval_key(plan.family, 12, 2, 2, 4, False)
        store.put_eval(plan.family, 12, 2, 2, 4, False, plan)
        store.entry_path(key).write_text("{ not json")
        fresh = ScheduleStore(store.cache_dir)
        assert fresh.get_eval(plan.family, 12, 2, 2, 4, False) is None
        moved = fresh.quarantine_dir / store.entry_path(key).name
        assert moved.is_file()
        assert moved.read_text() == "{ not json"  # evidence intact

    def test_quarantined_files_are_not_entries(self, store):
        plan = _some_plan()
        key = eval_key(plan.family, 12, 2, 2, 4, False)
        store.put_eval(plan.family, 12, 2, 2, 4, False, plan)
        store.entry_path(key).write_text("{ not json")
        fresh = ScheduleStore(store.cache_dir)
        fresh.get_eval(plan.family, 12, 2, 2, 4, False)
        assert len(fresh) == 0          # the entry walk skips quarantine/
        assert fresh.clear() == 0       # and so does clear()
        assert fresh.quarantine_dir.exists()
        assert fresh.clear_quarantine() == 1
        assert list(fresh.quarantine_dir.glob("*.json")) == []

    def test_quarantine_also_drops_the_memory_front(self, store):
        plan = _some_plan()
        key = eval_key(plan.family, 12, 2, 2, 4, False)
        store.put_eval(plan.family, 12, 2, 2, 4, False, plan)
        store.entry_path(key).write_text("{ not json")
        # The writing store still has the plan in its LRU; a scrub must
        # purge that too, or the bad slot keeps serving from memory.
        store.scrub()
        assert store.get_eval(plan.family, 12, 2, 2, 4, False) is None


class TestScrub:
    def test_clean_store_scrubs_clean(self, store):
        plan = _some_plan()
        store.put_eval(plan.family, 12, 2, 2, 4, False, plan)
        store.put_plan(12, 2, Fraction(1, 2), False, plan)
        report = store.scrub()
        assert report.clean
        assert report.scanned == 2 and report.ok == 2
        assert report.quarantined == 0 and report.problems == []

    def test_truncated_mid_write_entry_is_quarantined(self, store):
        plan = _some_plan()
        key = eval_key(plan.family, 12, 2, 2, 4, False)
        store.put_eval(plan.family, 12, 2, 2, 4, False, plan)
        path = store.entry_path(key)
        path.write_text(path.read_text()[:120])  # a torn write
        report = store.scrub()
        assert not report.clean
        assert report.corrupt == 1 and report.quarantined == 1
        assert not path.exists()
        assert (store.quarantine_dir / path.name).is_file()
        assert store.get_eval(plan.family, 12, 2, 2, 4, False) is None

    def test_valid_json_wrong_digest_is_quarantined(self, store):
        """An entry renamed to the wrong slot: valid JSON, wrong hash."""
        plan = _some_plan()
        key = eval_key(plan.family, 12, 2, 2, 4, False)
        other = eval_key("tdma", 12, 2, 2, 4, False)
        store.put_eval("tdma", 12, 2, 2, 4, False, plan)
        wrong = store.entry_path(key)
        wrong.parent.mkdir(parents=True, exist_ok=True)
        wrong.write_text(store.entry_path(other).read_text())
        report = store.scrub()
        assert report.corrupt == 1 and report.ok == 1
        assert "digest" in report.problems[0][1]
        assert (store.quarantine_dir / wrong.name).is_file()

    def test_unreadable_entry_is_quarantined(self, store, monkeypatch):
        """I/O failures on read quarantine too (the file may be salvage-
        able later); driven by a fault injection because the test may
        run as root, where permission bits do not bite."""
        plan = _some_plan()
        key = eval_key(plan.family, 12, 2, 2, 4, False)
        store.put_eval(plan.family, 12, 2, 2, 4, False, plan)
        bad = store.entry_path(key)
        real_read = Path.read_text

        def failing_read(self, *args, **kwargs):
            if self == bad:
                raise PermissionError(13, "Permission denied", str(self))
            return real_read(self, *args, **kwargs)

        monkeypatch.setattr(Path, "read_text", failing_read)
        report = store.scrub()
        assert report.unreadable == 1 and report.quarantined == 1
        assert "PermissionError" in report.problems[0][1]
        monkeypatch.undo()
        assert (store.quarantine_dir / bad.name).is_file()
        assert store.get_eval(plan.family, 12, 2, 2, 4, False) is None

    def test_scrub_counters_land_in_the_registry(self, store):
        plan = _some_plan()
        key = eval_key(plan.family, 12, 2, 2, 4, False)
        store.put_eval(plan.family, 12, 2, 2, 4, False, plan)
        store.put_plan(12, 2, Fraction(1, 2), False, plan)
        store.entry_path(key).write_text("{ not json")
        store.scrub()
        reg = store.stats.registry
        assert reg.get("repro_store_scrub_runs_total").value() == 1
        entries = reg.get("repro_store_scrub_entries_total")
        assert entries.value(result="ok") == 1
        assert entries.value(result="corrupt") == 1
        assert reg.get("repro_store_scrub_quarantined_total").value() == 1

    def test_second_scrub_is_clean(self, store):
        plan = _some_plan()
        key = eval_key(plan.family, 12, 2, 2, 4, False)
        store.put_eval(plan.family, 12, 2, 2, 4, False, plan)
        store.entry_path(key).write_text("{ not json")
        assert not store.scrub().clean
        again = store.scrub()
        assert again.clean and again.scanned == 0
