"""Runtime observability: counters reconcile exactly with the result.

The contract under test: after any :func:`execute_tasks` run — inline or
pooled, clean or fault-injected — the parent-side registry's
``repro_runtime_tasks_completed_total`` series match
:meth:`RuntimeResult.summary` status-for-status, the retry/timeout/
quarantine counters agree with the per-task reports, and every completed
task carries a positive ``duration_s``.
"""

import pytest

from repro.core.planner import (
    candidate_sources,
    duty_budget_fraction,
    duty_grid,
)
from repro.faults import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.service.provision import task_from_point
from repro.service.runtime import (
    RuntimeConfig,
    STATUS_OK,
    STATUS_QUARANTINED,
    STATUS_RETRIED,
    STATUS_TIMED_OUT,
    execute_tasks,
)


@pytest.fixture(scope="module")
def tasks():
    """The planner grid for (n=12, D=2, duty 1/2): a handful of tasks."""
    points = duty_grid(12, 2, duty_budget_fraction(0.5),
                       candidate_sources(12, 2))
    out = [task_from_point(p, 12, 2, False) for p in points]
    assert len(out) >= 3
    return out


def _completed_by_status(registry):
    """The tasks_completed counter decomposed by its status label."""
    counter = registry.get("repro_runtime_tasks_completed_total")
    assert counter is not None, "runtime did not register its counters"
    return {dict(s.labels)["status"]: int(s.value)
            for s in counter.series() if s.value}


def _counter_value(registry, name):
    metric = registry.get(name)
    return int(metric.total()) if metric is not None else 0


class TestReconciliation:
    def test_clean_pool_run_reconciles(self, tasks):
        registry = MetricsRegistry()
        outcome = execute_tasks(tasks, config=RuntimeConfig(jobs=2),
                                registry=registry)
        assert outcome.complete
        assert _completed_by_status(registry) == outcome.summary()
        assert _completed_by_status(registry) == {STATUS_OK: len(tasks)}
        assert _counter_value(registry, "repro_runtime_retries_total") == 0
        assert _counter_value(registry, "repro_runtime_timeouts_total") == 0
        assert _counter_value(
            registry, "repro_runtime_quarantines_total") == 0

    def test_faulted_pool_run_reconciles(self, tasks):
        # One task errors once (retried), the rest run clean.
        digest = tasks[0].key()
        faults = FaultPlan(targeted_worker_faults=((digest, ("error",)),))
        registry = MetricsRegistry()
        outcome = execute_tasks(
            tasks, config=RuntimeConfig(jobs=2, backoff_base=0.0),
            faults=faults, registry=registry)
        summary = outcome.summary()
        assert summary[STATUS_RETRIED] == 1
        assert _completed_by_status(registry) == summary
        # every charged fault that got another attempt is one retry
        expected_retries = sum(
            r.fault_count for r in outcome.reports.values()
            if r.status in (STATUS_OK, STATUS_RETRIED))
        assert _counter_value(
            registry, "repro_runtime_retries_total") == expected_retries

    def test_timeouts_are_counted(self, tasks):
        digest = tasks[0].key()
        faults = FaultPlan(hang_seconds=20, targeted_worker_faults=(
            (digest, ("hang",) * 9),))
        registry = MetricsRegistry()
        outcome = execute_tasks(
            tasks, config=RuntimeConfig(jobs=2, task_timeout=0.7,
                                        max_retries=0),
            faults=faults, registry=registry)
        assert outcome.reports[digest].status == STATUS_TIMED_OUT
        assert _completed_by_status(registry) == outcome.summary()
        assert _counter_value(registry, "repro_runtime_timeouts_total") >= 1
        assert _counter_value(
            registry,
            "repro_runtime_pool_rebuilds_total") == outcome.pool_rebuilds

    def test_quarantine_is_counted(self, tasks):
        poison = tasks[0].key()
        faults = FaultPlan(targeted_worker_faults=((poison, ("crash",) * 9),))
        registry = MetricsRegistry()
        outcome = execute_tasks(
            tasks, config=RuntimeConfig(jobs=2, quarantine_after=2,
                                        backoff_base=0.0),
            faults=faults, registry=registry)
        assert outcome.reports[poison].status == STATUS_QUARANTINED
        assert _completed_by_status(registry) == outcome.summary()
        assert _counter_value(
            registry, "repro_runtime_quarantines_total") == 1
        assert _counter_value(
            registry,
            "repro_runtime_pool_rebuilds_total") == outcome.pool_rebuilds


class TestDurations:
    def test_inline_durations_positive(self, tasks):
        registry = MetricsRegistry()
        outcome = execute_tasks(tasks, config=RuntimeConfig(jobs=1),
                                registry=registry)
        for report in outcome.reports.values():
            assert report.duration_s > 0.0
        hist = registry.get("repro_runtime_task_exec_seconds")
        (series,) = list(hist.series())
        assert series.count == len(tasks)

    def test_pool_durations_and_worker_metrics_merge(self, tasks):
        registry = MetricsRegistry()
        outcome = execute_tasks(tasks, config=RuntimeConfig(jobs=2),
                                registry=registry)
        for report in outcome.reports.values():
            assert report.duration_s > 0.0
            assert report.worker_metrics is not None
            assert report.worker_metrics["format"] == "repro-metrics"
        # worker-side deltas merged into the parent registry
        evals = registry.get("repro_runtime_worker_evaluations_total")
        assert evals is not None and evals.total() == len(tasks)
        hist = registry.get("repro_runtime_task_exec_seconds")
        (series,) = list(hist.series())
        assert series.count == len(tasks)
        wait = registry.get("repro_runtime_task_queue_wait_seconds")
        (wait_series,) = list(wait.series())
        assert wait_series.count == len(tasks)
