"""The batch provisioning API and its parallel/sequential parity."""

from fractions import Fraction

import pytest

import repro.core.planner as planner_mod
from repro.core.planner import plan_schedule
from repro.core.transparency import is_topology_transparent
from repro.service.api import ProvisionRequest, ProvisionResult, provision_batch
from repro.service.store import ScheduleStore


@pytest.fixture
def store(tmp_path) -> ScheduleStore:
    """A store rooted in a fresh temporary directory."""
    return ScheduleStore(tmp_path / "cache")


def _count_constructions(monkeypatch):
    """Route planner constructions through a counter; returns the list."""
    calls = []
    real = planner_mod.construct_detailed
    monkeypatch.setattr(
        planner_mod, "construct_detailed",
        lambda *a, **kw: calls.append(a) or real(*a, **kw))
    return calls


class TestRequests:
    def test_from_dict_round_trip(self):
        req = ProvisionRequest.from_dict(
            {"n": 15, "d": 2, "max_duty": "2/5", "balanced": True})
        assert req == ProvisionRequest(15, 2, "2/5", balanced=True)
        assert req.to_dict() == {"n": 15, "d": 2, "max_duty": "2/5",
                                 "balanced": True}

    def test_from_dict_rejects_missing_and_unknown_fields(self):
        with pytest.raises(ValueError, match="missing"):
            ProvisionRequest.from_dict({"n": 15, "d": 2})
        with pytest.raises(ValueError, match="unknown"):
            ProvisionRequest.from_dict(
                {"n": 15, "d": 2, "max_duty": 0.4, "alpha": 1})

    def test_signature_is_exact(self):
        float_sig = ProvisionRequest(15, 2, 0.4).signature()
        exact_sig = ProvisionRequest(15, 2, Fraction(2, 5)).signature()
        assert float_sig == exact_sig == (15, 2, Fraction(2, 5), False)

    def test_from_dict_rejects_wrong_types_naming_the_key(self):
        good = {"n": 15, "d": 2, "max_duty": 0.4}
        for key, bad in [("n", "15"), ("n", 15.0), ("n", True),
                         ("d", "2"), ("d", None), ("d", False)]:
            with pytest.raises(ValueError, match=f"field '{key}' must be"):
                ProvisionRequest.from_dict({**good, key: bad})
        for bad_duty in ([0.4], None, True, {"num": 2}):
            with pytest.raises(ValueError, match="'max_duty' must be"):
                ProvisionRequest.from_dict({**good, "max_duty": bad_duty})
        for bad_balanced in ("yes", 1, 0, None):
            with pytest.raises(ValueError, match="'balanced' must be"):
                ProvisionRequest.from_dict({**good,
                                            "balanced": bad_balanced})

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            ProvisionRequest.from_dict([15, 2, 0.4])

    def test_from_dict_accepts_integer_duty(self):
        # max_duty=1 (always-on) is an int, not a float: still a number.
        req = ProvisionRequest.from_dict({"n": 15, "d": 2, "max_duty": 1})
        assert req.max_duty == 1


class TestResultFromDict:
    def test_success_round_trips_exactly(self):
        result, = provision_batch([ProvisionRequest(12, 2, 0.5)])
        doc = result.to_dict()
        back = ProvisionResult.from_dict(doc)
        assert back.plan == result.plan
        assert back.request == result.request
        assert back.to_dict() == doc

    def test_error_result_round_trips(self):
        result, = provision_batch([ProvisionRequest(12, 2, 0.05)])
        back = ProvisionResult.from_dict(result.to_dict())
        assert back.plan is None
        assert back.error == result.error
        assert back.to_dict() == result.to_dict()

    def test_schedule_free_document_is_rejected(self):
        result, = provision_batch([ProvisionRequest(12, 2, 0.5)])
        doc = result.to_dict(include_schedule=False)
        with pytest.raises(ValueError, match="missing field 'schedule'"):
            ProvisionResult.from_dict(doc)

    def test_from_cache_and_degraded_flags_survive(self):
        result, = provision_batch([ProvisionRequest(12, 2, 0.5)])
        doc = result.to_dict()
        doc["from_cache"] = True
        doc["degraded"] = True
        back = ProvisionResult.from_dict(doc)
        assert back.from_cache is True
        assert back.degraded is True


class TestBatch:
    def test_matches_sequential_planner(self):
        requests = [ProvisionRequest(15, 2, 0.4),
                    ProvisionRequest(12, 2, "1/2"),
                    ProvisionRequest(12, 2, 0.5, balanced=True)]
        results = provision_batch(requests)
        for req, res in zip(requests, results):
            assert res.error is None
            assert res.plan == plan_schedule(req.n, req.d, req.max_duty,
                                             balanced=req.balanced)
            assert is_topology_transparent(res.plan.schedule, req.d)

    def test_jobs_1_and_jobs_4_identical(self):
        requests = [ProvisionRequest(15, 2, 0.4),
                    ProvisionRequest(12, 2, 0.5)]
        sequential = provision_batch(requests, jobs=1)
        parallel = provision_batch(requests, jobs=4)
        assert [r.plan for r in sequential] == [r.plan for r in parallel]

    def test_duplicate_requests_computed_once(self, monkeypatch):
        calls = _count_constructions(monkeypatch)
        once = provision_batch([ProvisionRequest(12, 2, 0.5)])
        single_cost = len(calls)
        calls.clear()
        twice = provision_batch([ProvisionRequest(12, 2, 0.5),
                                 ProvisionRequest(12, 2, Fraction(1, 2))])
        assert len(calls) == single_cost  # float and exact dedupe together
        assert twice[0].plan == twice[1].plan == once[0].plan

    def test_error_isolated_per_request(self):
        results = provision_batch([ProvisionRequest(15, 2, 0.05),
                                   ProvisionRequest(15, 2, 0.4),
                                   ProvisionRequest(15, 99, 0.4)])
        assert "duty budget" in results[0].error
        assert results[1].error is None and results[1].plan is not None
        assert "D must be" in results[2].error
        assert results[0].plan is None and results[2].plan is None

    def test_result_to_dict_shapes(self):
        ok, bad = provision_batch([ProvisionRequest(12, 2, 0.5),
                                   ProvisionRequest(12, 2, 0.05)])
        doc = ok.to_dict()
        assert doc["family"] == ok.plan.family
        assert doc["schedule"]["format"] == "repro-schedule"
        assert "schedule" not in ok.to_dict(include_schedule=False)
        assert set(bad.to_dict()) == {"request", "error"}


class TestCaching:
    def test_second_batch_zero_constructions(self, store, monkeypatch):
        requests = [ProvisionRequest(15, 2, 0.4),
                    ProvisionRequest(12, 2, 0.5)]
        cold = provision_batch(requests, store=store, jobs=1)
        assert all(not r.from_cache for r in cold)
        calls = _count_constructions(monkeypatch)
        warm = provision_batch(requests,
                               store=ScheduleStore(store.cache_dir), jobs=1)
        assert calls == []
        assert all(r.from_cache for r in warm)
        assert [r.plan for r in warm] == [r.plan for r in cold]

    def test_cold_parallel_equals_cold_sequential_through_cache(
            self, tmp_path):
        requests = [ProvisionRequest(15, 2, 0.4), ProvisionRequest(12, 2, 0.5)]
        seq = provision_batch(requests,
                              store=ScheduleStore(tmp_path / "a"), jobs=1)
        par = provision_batch(requests,
                              store=ScheduleStore(tmp_path / "b"), jobs=4)
        assert [r.plan for r in seq] == [r.plan for r in par]

    def test_eval_entries_shared_between_requests(self, store, monkeypatch):
        """Two budgets over one class share their common grid points."""
        provision_batch([ProvisionRequest(12, 2, 0.5)], store=store)
        calls = _count_constructions(monkeypatch)
        provision_batch([ProvisionRequest(12, 2, 0.4)],
                        store=ScheduleStore(store.cache_dir))
        full_grid_cost = store.stats.stores - 1  # minus the plan entry
        assert 0 < len(calls) < full_grid_cost

    def test_no_store_means_no_disk(self, tmp_path):
        provision_batch([ProvisionRequest(12, 2, 0.5)], store=None)
        assert list(tmp_path.iterdir()) == []


class TestResultDataclass:
    def test_frozen(self):
        result = provision_batch([ProvisionRequest(12, 2, 0.5)])[0]
        assert isinstance(result, ProvisionResult)
        with pytest.raises(AttributeError):
            result.from_cache = True  # type: ignore[misc]


def _grid_digests(n=12, d=2, duty=0.5, balanced=False):
    """The store-key digests of the planner grid, in grid order."""
    from repro.core.planner import (candidate_sources, duty_budget_fraction,
                                    duty_grid)
    from repro.service.provision import task_from_point
    points = duty_grid(n, d, duty_budget_fraction(duty),
                       candidate_sources(n, d))
    return [task_from_point(p, n, d, balanced).key() for p in points]


class TestFaultTolerance:
    """The PR's acceptance scenario: crash + hang, then warm resume."""

    def test_crash_and_hang_then_resume_from_checkpoint(
            self, store, monkeypatch):
        from fractions import Fraction

        from repro.faults import FaultPlan
        from repro.service.api import provision_batch_report
        from repro.service.runtime import RuntimeConfig

        digests = _grid_digests()
        crash, hang = digests[0], digests[1]
        faults = FaultPlan(hang_seconds=20, targeted_worker_faults=(
            (crash, ("crash",)), (hang, ("hang",) * 4)))
        request = ProvisionRequest(12, 2, 0.5)

        # --- faulted run: one worker crash, one wedged worker ----------
        report = provision_batch_report(
            [request], store=store,
            runtime=RuntimeConfig(jobs=2, task_timeout=1.0, max_retries=1,
                                  backoff_base=0.01),
            faults=faults)
        assert report.pool_rebuilds >= 1
        assert report.task_reports[crash].status == "retried"
        assert report.task_reports[hang].status == "timed-out"
        result = report.results[0]
        assert result.error is None and result.plan is not None
        assert result.degraded and report.degraded
        assert dict(result.failed_tasks) == {hang: "timed-out"}
        # A degraded winner must never reach the plan-level cache.
        assert store.get_plan(12, 2, Fraction(1, 2), False) is None

        # --- warm re-run: only the lost grid point is re-evaluated -----
        calls = _count_constructions(monkeypatch)
        warm_store = ScheduleStore(store.cache_dir)
        resumed = provision_batch_report([request], store=warm_store)
        assert len(calls) == 1  # every checkpointed sibling was reaped
        assert warm_store.stats.hits == len(digests) - 1
        final = resumed.results[0]
        assert not final.degraded and final.failed_tasks == ()
        assert final.plan == plan_schedule(12, 2, 0.5)
        assert resumed.task_summary() == {"ok": 1}
        # The healthy run caches the plan like any other.
        assert warm_store.stats.stores >= 2  # the lost eval + the plan

    def test_all_grid_points_lost_yields_error_not_raise(self):
        from repro.faults import FaultPlan
        from repro.service.runtime import RuntimeConfig

        digests = _grid_digests()
        faults = FaultPlan(targeted_worker_faults=tuple(
            (d, ("error",) * 9) for d in digests))
        results = provision_batch(
            [ProvisionRequest(12, 2, 0.5)],
            runtime=RuntimeConfig(max_retries=0), faults=faults)
        result = results[0]
        assert result.plan is None
        assert "lost to worker faults" in result.error
        assert len(result.failed_tasks) == len(digests)

    def test_healthy_batch_report_shape(self, store):
        from repro.service.api import provision_batch_report

        report = provision_batch_report(
            [ProvisionRequest(12, 2, 0.5)], store=store)
        assert not report.degraded
        assert report.pool_rebuilds == 0
        assert set(report.task_summary()) == {"ok"}
        assert report.store_stats is store.stats
        assert report.store_stats.stores > 0
