"""The batch provisioning API and its parallel/sequential parity."""

from fractions import Fraction

import pytest

import repro.core.planner as planner_mod
from repro.core.planner import plan_schedule
from repro.core.transparency import is_topology_transparent
from repro.service.api import ProvisionRequest, ProvisionResult, provision_batch
from repro.service.store import ScheduleStore


@pytest.fixture
def store(tmp_path) -> ScheduleStore:
    """A store rooted in a fresh temporary directory."""
    return ScheduleStore(tmp_path / "cache")


def _count_constructions(monkeypatch):
    """Route planner constructions through a counter; returns the list."""
    calls = []
    real = planner_mod.construct_detailed
    monkeypatch.setattr(
        planner_mod, "construct_detailed",
        lambda *a, **kw: calls.append(a) or real(*a, **kw))
    return calls


class TestRequests:
    def test_from_dict_round_trip(self):
        req = ProvisionRequest.from_dict(
            {"n": 15, "d": 2, "max_duty": "2/5", "balanced": True})
        assert req == ProvisionRequest(15, 2, "2/5", balanced=True)
        assert req.to_dict() == {"n": 15, "d": 2, "max_duty": "2/5",
                                 "balanced": True}

    def test_from_dict_rejects_missing_and_unknown_fields(self):
        with pytest.raises(ValueError, match="missing"):
            ProvisionRequest.from_dict({"n": 15, "d": 2})
        with pytest.raises(ValueError, match="unknown"):
            ProvisionRequest.from_dict(
                {"n": 15, "d": 2, "max_duty": 0.4, "alpha": 1})

    def test_signature_is_exact(self):
        float_sig = ProvisionRequest(15, 2, 0.4).signature()
        exact_sig = ProvisionRequest(15, 2, Fraction(2, 5)).signature()
        assert float_sig == exact_sig == (15, 2, Fraction(2, 5), False)


class TestBatch:
    def test_matches_sequential_planner(self):
        requests = [ProvisionRequest(15, 2, 0.4),
                    ProvisionRequest(12, 2, "1/2"),
                    ProvisionRequest(12, 2, 0.5, balanced=True)]
        results = provision_batch(requests)
        for req, res in zip(requests, results):
            assert res.error is None
            assert res.plan == plan_schedule(req.n, req.d, req.max_duty,
                                             balanced=req.balanced)
            assert is_topology_transparent(res.plan.schedule, req.d)

    def test_jobs_1_and_jobs_4_identical(self):
        requests = [ProvisionRequest(15, 2, 0.4),
                    ProvisionRequest(12, 2, 0.5)]
        sequential = provision_batch(requests, jobs=1)
        parallel = provision_batch(requests, jobs=4)
        assert [r.plan for r in sequential] == [r.plan for r in parallel]

    def test_duplicate_requests_computed_once(self, monkeypatch):
        calls = _count_constructions(monkeypatch)
        once = provision_batch([ProvisionRequest(12, 2, 0.5)])
        single_cost = len(calls)
        calls.clear()
        twice = provision_batch([ProvisionRequest(12, 2, 0.5),
                                 ProvisionRequest(12, 2, Fraction(1, 2))])
        assert len(calls) == single_cost  # float and exact dedupe together
        assert twice[0].plan == twice[1].plan == once[0].plan

    def test_error_isolated_per_request(self):
        results = provision_batch([ProvisionRequest(15, 2, 0.05),
                                   ProvisionRequest(15, 2, 0.4),
                                   ProvisionRequest(15, 99, 0.4)])
        assert "duty budget" in results[0].error
        assert results[1].error is None and results[1].plan is not None
        assert "D must be" in results[2].error
        assert results[0].plan is None and results[2].plan is None

    def test_result_to_dict_shapes(self):
        ok, bad = provision_batch([ProvisionRequest(12, 2, 0.5),
                                   ProvisionRequest(12, 2, 0.05)])
        doc = ok.to_dict()
        assert doc["family"] == ok.plan.family
        assert doc["schedule"]["format"] == "repro-schedule"
        assert "schedule" not in ok.to_dict(include_schedule=False)
        assert set(bad.to_dict()) == {"request", "error"}


class TestCaching:
    def test_second_batch_zero_constructions(self, store, monkeypatch):
        requests = [ProvisionRequest(15, 2, 0.4),
                    ProvisionRequest(12, 2, 0.5)]
        cold = provision_batch(requests, store=store, jobs=1)
        assert all(not r.from_cache for r in cold)
        calls = _count_constructions(monkeypatch)
        warm = provision_batch(requests,
                               store=ScheduleStore(store.cache_dir), jobs=1)
        assert calls == []
        assert all(r.from_cache for r in warm)
        assert [r.plan for r in warm] == [r.plan for r in cold]

    def test_cold_parallel_equals_cold_sequential_through_cache(
            self, tmp_path):
        requests = [ProvisionRequest(15, 2, 0.4), ProvisionRequest(12, 2, 0.5)]
        seq = provision_batch(requests,
                              store=ScheduleStore(tmp_path / "a"), jobs=1)
        par = provision_batch(requests,
                              store=ScheduleStore(tmp_path / "b"), jobs=4)
        assert [r.plan for r in seq] == [r.plan for r in par]

    def test_eval_entries_shared_between_requests(self, store, monkeypatch):
        """Two budgets over one class share their common grid points."""
        provision_batch([ProvisionRequest(12, 2, 0.5)], store=store)
        calls = _count_constructions(monkeypatch)
        provision_batch([ProvisionRequest(12, 2, 0.4)],
                        store=ScheduleStore(store.cache_dir))
        full_grid_cost = store.stats.stores - 1  # minus the plan entry
        assert 0 < len(calls) < full_grid_cost

    def test_no_store_means_no_disk(self, tmp_path):
        provision_batch([ProvisionRequest(12, 2, 0.5)], store=None)
        assert list(tmp_path.iterdir()) == []


class TestResultDataclass:
    def test_frozen(self):
        result = provision_batch([ProvisionRequest(12, 2, 0.5)])[0]
        assert isinstance(result, ProvisionResult)
        with pytest.raises(AttributeError):
            result.from_cache = True  # type: ignore[misc]
