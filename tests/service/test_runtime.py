"""The fault-tolerant runtime: retries, pool recovery, quarantine."""

import dataclasses

import pytest

from repro.core.planner import (
    candidate_sources,
    duty_budget_fraction,
    duty_grid,
)
from repro.faults import FaultPlan
import repro.service.runtime as runtime_mod
from repro.service.provision import evaluate_tasks, task_from_point
from repro.service.runtime import (
    RuntimeConfig,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_QUARANTINED,
    STATUS_RETRIED,
    STATUS_TIMED_OUT,
    TERMINAL_STATUSES,
    execute_tasks,
)
from repro.service.store import ScheduleStore


def _grid_tasks(n=12, d=2, duty=0.5, balanced=False):
    points = duty_grid(n, d, duty_budget_fraction(duty),
                       candidate_sources(n, d))
    return [task_from_point(p, n, d, balanced) for p in points]


@pytest.fixture(scope="module")
def tasks():
    """The planner grid for (n=12, D=2, duty 1/2): a handful of tasks."""
    out = _grid_tasks()
    assert len(out) >= 3  # the scenarios below need a few distinct tasks
    return out


@pytest.fixture(scope="module")
def clean_plans(tasks):
    """Ground truth: every task evaluated inline with no faults."""
    return execute_tasks(tasks, config=RuntimeConfig(jobs=1)).plans


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RuntimeConfig(jobs=0)
        with pytest.raises(ValueError):
            RuntimeConfig(task_timeout=0.0)
        with pytest.raises(ValueError):
            RuntimeConfig(max_retries=-1)
        with pytest.raises(ValueError):
            RuntimeConfig(backoff_base=0.5, backoff_cap=0.1)

    def test_backoff_is_seeded_and_capped(self):
        config = RuntimeConfig(backoff_base=0.1, backoff_cap=0.3, seed=4)
        delays = [config.backoff_delay("abc", k, None) for k in (1, 2, 3, 9)]
        assert delays == [config.backoff_delay("abc", k, None)
                          for k in (1, 2, 3, 9)]
        # jitter is in [0.5, 1.5): bounded by half the base / 1.5x the cap
        assert 0.05 <= delays[0] < 0.15
        assert all(d < 0.45 for d in delays)


class TestInline:
    def test_clean_run_is_all_ok(self, tasks, clean_plans):
        outcome = execute_tasks(tasks, config=RuntimeConfig(jobs=1))
        assert outcome.complete
        assert outcome.summary() == {STATUS_OK: len(clean_plans)}
        assert outcome.plans == clean_plans
        assert outcome.pool_rebuilds == 0

    def test_transient_error_is_retried(self, tasks, clean_plans):
        digest = tasks[0].key()
        faults = FaultPlan(targeted_worker_faults=((digest, ("error",)),))
        outcome = execute_tasks(
            tasks, config=RuntimeConfig(jobs=1, backoff_base=0.0), faults=faults)
        assert outcome.complete
        report = outcome.reports[digest]
        assert report.status == STATUS_RETRIED
        assert report.attempts == 2 and report.fault_count == 1
        assert outcome.plans == clean_plans

    def test_exhausted_retries_fail_but_spare_survivors(self, tasks,
                                                        clean_plans):
        digest = tasks[0].key()
        faults = FaultPlan(targeted_worker_faults=((digest, ("error",) * 9),))
        outcome = execute_tasks(
            tasks, config=RuntimeConfig(jobs=1, max_retries=1,
                                        backoff_base=0.0), faults=faults)
        report = outcome.reports[digest]
        assert report.status == STATUS_FAILED
        assert "injected error" in report.error
        assert digest not in outcome.plans
        survivors = {d: p for d, p in clean_plans.items() if d != digest}
        assert outcome.plans == survivors
        assert outcome.failures() == {digest: report}

    def test_inline_crash_degrades_to_error(self, tasks):
        digest = tasks[0].key()
        faults = FaultPlan(targeted_worker_faults=((digest, ("crash",) * 9),))
        outcome = execute_tasks(
            tasks, config=RuntimeConfig(jobs=1, max_retries=0), faults=faults)
        assert outcome.reports[digest].status == STATUS_FAILED
        assert "injected crash" in outcome.reports[digest].error

    def test_inline_hang_times_out_immediately(self, tasks):
        digest = tasks[0].key()
        faults = FaultPlan(hang_seconds=3600,
                           targeted_worker_faults=((digest, ("hang",) * 9),))
        outcome = execute_tasks(
            tasks, config=RuntimeConfig(jobs=1, max_retries=0), faults=faults)
        assert outcome.reports[digest].status == STATUS_TIMED_OUT

    def test_checkpoints_land_in_store(self, tasks, clean_plans, tmp_path):
        store = ScheduleStore(tmp_path / "cache")
        execute_tasks(tasks, config=RuntimeConfig(jobs=1), store=store)
        for task in tasks:
            cached = store.get_eval(task.family, task.n, task.d,
                                    task.alpha_t, task.alpha_r, task.balanced)
            assert cached == clean_plans[task.key()]

    def test_statuses_are_terminal(self, tasks):
        digest = tasks[0].key()
        faults = FaultPlan(targeted_worker_faults=((digest, ("error",) * 9),))
        outcome = execute_tasks(
            tasks, config=RuntimeConfig(jobs=1, max_retries=0), faults=faults)
        assert all(r.status in TERMINAL_STATUSES
                   for r in outcome.reports.values())


class TestPool:
    def test_parity_with_inline(self, tasks, clean_plans):
        outcome = execute_tasks(tasks, config=RuntimeConfig(jobs=2))
        assert outcome.complete
        assert outcome.plans == clean_plans

    def test_crash_and_hang_recovery(self, tasks, clean_plans):
        """The acceptance scenario: one worker crash (BrokenProcessPool),
        one wedged worker (per-task timeout), healthy tasks unharmed."""
        crash, hang = tasks[0].key(), tasks[1].key()
        faults = FaultPlan(hang_seconds=20, targeted_worker_faults=(
            (crash, ("crash",)), (hang, ("hang",) * 4)))
        outcome = execute_tasks(
            tasks,
            config=RuntimeConfig(jobs=2, task_timeout=1.0, max_retries=1,
                                 backoff_base=0.01),
            faults=faults)
        assert outcome.pool_rebuilds >= 1
        assert outcome.reports[crash].status == STATUS_RETRIED
        assert outcome.reports[hang].status == STATUS_TIMED_OUT
        for task in tasks:
            digest = task.key()
            if digest == hang:
                assert digest not in outcome.plans
            else:
                # bit-identical to the clean inline evaluation
                assert outcome.reports[digest].succeeded
                assert outcome.plans[digest] == clean_plans[digest]

    def test_poison_task_is_quarantined(self, tasks, clean_plans):
        poison = tasks[0].key()
        faults = FaultPlan(targeted_worker_faults=((poison, ("crash",) * 9),))
        outcome = execute_tasks(
            tasks,
            config=RuntimeConfig(jobs=2, max_retries=5, backoff_base=0.01,
                                 quarantine_after=2),
            faults=faults)
        report = outcome.reports[poison]
        assert report.status == STATUS_QUARANTINED
        assert "quarantined" in report.error
        assert poison not in outcome.plans
        for task in tasks:
            digest = task.key()
            if digest != poison:
                assert outcome.reports[digest].succeeded
                assert outcome.plans[digest] == clean_plans[digest]


class TestEvaluateTasks:
    def test_raising_task_no_longer_sinks_the_batch(self, tasks, clean_plans):
        """Regression: a task whose evaluation raises used to abort the
        whole ``pool.map`` and discard every finished sibling.  Now the
        survivors come back and only the bad task is missing."""
        bad = dataclasses.replace(tasks[0], alpha_t=tasks[0].n,
                                  alpha_r=tasks[0].n)
        with pytest.raises(Exception):
            runtime_mod._evaluate(bad)  # the bad task genuinely raises
        plans = evaluate_tasks(list(tasks) + [bad],
                               config=RuntimeConfig(max_retries=0))
        assert set(plans) == set(clean_plans)
        assert plans == clean_plans

    def test_faults_thread_through(self, tasks, clean_plans):
        digest = tasks[0].key()
        faults = FaultPlan(targeted_worker_faults=((digest, ("error",) * 9),))
        plans = evaluate_tasks(tasks, config=RuntimeConfig(max_retries=0),
                               faults=faults)
        assert digest not in plans
        assert set(plans) == set(clean_plans) - {digest}
