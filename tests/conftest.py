"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core.schedule import Schedule


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG per test."""
    return np.random.default_rng(12345)


def random_schedule_strategy(max_n: int = 7, max_len: int = 8,
                             non_sleeping: bool = False):
    """Hypothesis strategy generating small valid schedules.

    Draws ``n``, a frame length, and per-slot per-node states in
    {sleep, transmit, receive} (or {transmit, receive} for non-sleeping).
    """
    choices = (0, 1) if non_sleeping else (0, 1, 2)

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=3, max_value=max_n))
        length = draw(st.integers(min_value=1, max_value=max_len))
        tx, rx = [], []
        for _ in range(length):
            t = r = 0
            for x in range(n):
                state = draw(st.sampled_from(choices))
                if state == 0:
                    t |= 1 << x
                elif state == 1:
                    r |= 1 << x
            tx.append(t)
            rx.append(r)
        return Schedule(n, tuple(tx), tuple(rx))

    return build()


def schedule_with_degree_strategy(max_n: int = 7, max_len: int = 8):
    """Strategy yielding ``(schedule, d)`` with a valid degree bound."""

    @st.composite
    def build(draw):
        sched = draw(random_schedule_strategy(max_n, max_len))
        d = draw(st.integers(min_value=2, max_value=sched.n - 1))
        return sched, d

    return build()
