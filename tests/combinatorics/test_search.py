"""Exact extremal cover-free-family search."""

import pytest

from repro.combinatorics.coverfree import CoverFreeFamily
from repro.combinatorics.search import (
    max_cover_free_family,
    max_cover_free_size,
    sperner_capacity,
)


class TestSperner:
    @pytest.mark.parametrize("ground,expected", [
        (1, 1), (2, 2), (3, 3), (4, 6), (5, 10), (6, 20),
    ])
    def test_capacity_formula(self, ground, expected):
        assert sperner_capacity(ground) == expected

    @pytest.mark.parametrize("ground", [2, 3, 4, 5])
    def test_search_attains_sperner(self, ground):
        """d = 1 cover-freeness == antichain; the exact search must land
        exactly on the Sperner number."""
        assert max_cover_free_size(ground, 1) == sperner_capacity(ground)


class TestExactSearch:
    def test_result_is_cover_free(self):
        fam = max_cover_free_family(5, 2)
        assert isinstance(fam, CoverFreeFamily)
        assert fam.is_d_cover_free(2)

    def test_fano_is_extremal(self):
        """The 7 lines of the Fano plane are a MAXIMUM 2-cover-free family
        of 3-sets over 7 points — the search settles it exactly."""
        assert max_cover_free_size(7, 2, block_size=3) == 7

    def test_limit_short_circuits(self):
        fam = max_cover_free_family(5, 1, limit=3)
        assert fam.size >= 3
        assert fam.is_d_cover_free(1)

    def test_fixed_block_size_respected(self):
        fam = max_cover_free_family(6, 2, block_size=3)
        assert all(b.bit_count() == 3 for b in fam.blocks)
        assert fam.is_d_cover_free(2)

    def test_small_degenerate(self):
        # One ground point: only block {0}; any second block repeats.
        assert max_cover_free_size(1, 1) == 1

    def test_monotone_in_d(self):
        """Stronger cover-freeness can only shrink the maximum family."""
        sizes = [max_cover_free_size(5, d) for d in (1, 2, 3)]
        assert sizes == sorted(sizes, reverse=True)

    def test_constructions_cannot_beat_exact_optimum(self):
        """The STS(7)-based family of any 7 blocks ties the exact optimum
        over the same ground set and block size."""
        sts = CoverFreeFamily.from_steiner_triple_system(7)
        assert sts.size == max_cover_free_size(7, 2, block_size=3)

    def test_validation(self):
        with pytest.raises(ValueError):
            max_cover_free_size(0, 1)
        with pytest.raises(ValueError):
            max_cover_free_family(4, 1, block_size=5)
