"""Orthogonal arrays from polynomial codes."""

import numpy as np
import pytest

from repro.combinatorics.orthogonal import is_orthogonal_array, polynomial_code


class TestPolynomialCode:
    @pytest.mark.parametrize("q,k", [(2, 1), (3, 1), (4, 1), (5, 1), (3, 2)])
    def test_full_code_is_oa_of_strength_k_plus_1(self, q, k):
        code = polynomial_code(q, k)
        assert code.shape == (q ** (k + 1), q)
        assert is_orthogonal_array(code, strength=k + 1, levels=q)

    @pytest.mark.parametrize("q,k", [(3, 1), (5, 1)])
    def test_also_oa_of_lower_strength(self, q, k):
        # Strength is downward closed (lambda scales by q per level dropped).
        code = polynomial_code(q, k)
        assert is_orthogonal_array(code, strength=k, levels=q)

    def test_prefix_rows(self):
        code = polynomial_code(5, 1, count=9)
        assert code.shape == (9, 5)
        full = polynomial_code(5, 1)
        assert (code == full[:9]).all()

    def test_rows_distinct(self):
        code = polynomial_code(4, 1)
        assert len({tuple(r) for r in code}) == 16

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            polynomial_code(6, 1)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            polynomial_code(3, 1, count=10)
        with pytest.raises(ValueError):
            polynomial_code(3, 1, count=0)


class TestVerifier:
    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            is_orthogonal_array(np.zeros(5, dtype=int), 1)

    def test_rejects_strength_above_columns(self):
        with pytest.raises(ValueError):
            is_orthogonal_array(np.zeros((4, 2), dtype=int), 3)

    def test_rejects_bad_lambda(self):
        # 5 rows over 2 levels cannot be strength 1 (lambda = 2.5).
        a = np.array([[0], [1], [0], [1], [0]])
        assert not is_orthogonal_array(a, 1, levels=2)

    def test_rejects_non_uniform(self):
        a = np.array([[0, 0], [0, 0], [1, 1], [1, 0]])
        assert not is_orthogonal_array(a, 2, levels=2)

    def test_accepts_hand_built_oa(self):
        # The full factorial over two binary columns: OA(4, 2, 2, 2).
        a = np.array([[0, 0], [0, 1], [1, 0], [1, 1]])
        assert is_orthogonal_array(a, 2, levels=2)

    def test_rejects_out_of_range_entries(self):
        a = np.array([[0, 0], [0, 1], [1, 0], [1, 2]])
        assert not is_orthogonal_array(a, 1, levels=2)

    def test_perturbation_breaks_oa(self):
        code = polynomial_code(3, 1).copy()
        code[0, 0] = (code[0, 0] + 1) % 3
        assert not is_orthogonal_array(code, 2, levels=3)
