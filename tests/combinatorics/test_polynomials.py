"""Polynomial evaluation and enumeration over finite fields."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.combinatorics.gf import field
from repro.combinatorics.polynomials import (
    enumerate_polynomials,
    evaluate_poly,
    evaluate_poly_all,
    poly_from_index,
    value_table,
)


def naive_eval(f, coeffs, x):
    """Direct power-sum evaluation used as the test oracle."""
    acc = 0
    for i, c in enumerate(coeffs):
        acc = f.add(acc, f.mul(c, f.pow(x, i)))
    return acc


class TestEvaluate:
    @pytest.mark.parametrize("q", [3, 5, 8, 9])
    def test_matches_naive(self, q):
        f = field(q)
        rng = np.random.default_rng(q)
        for _ in range(20):
            deg = int(rng.integers(0, 4))
            coeffs = [int(c) for c in rng.integers(0, q, size=deg + 1)]
            for x in f.elements:
                assert evaluate_poly(f, coeffs, x) == naive_eval(f, coeffs, x)

    def test_constant(self):
        f = field(7)
        for c in f.elements:
            for x in f.elements:
                assert evaluate_poly(f, [c], x) == c

    def test_identity(self):
        f = field(7)
        for x in f.elements:
            assert evaluate_poly(f, [0, 1], x) == x

    def test_empty_coeffs_is_zero(self):
        f = field(5)
        assert evaluate_poly(f, [], 3) == 0

    def test_point_out_of_field(self):
        with pytest.raises(ValueError):
            evaluate_poly(field(5), [1], 5)

    @pytest.mark.parametrize("q", [4, 5, 9])
    def test_evaluate_all_matches_pointwise(self, q):
        f = field(q)
        rng = np.random.default_rng(q + 7)
        coeffs = [int(c) for c in rng.integers(0, q, size=3)]
        table = evaluate_poly_all(f, coeffs)
        assert table.shape == (q,)
        for x in f.elements:
            assert table[x] == evaluate_poly(f, coeffs, x)


class TestEnumeration:
    def test_index_roundtrip(self):
        f = field(3)
        seen = set()
        for idx in range(3**3):
            coeffs = poly_from_index(f, 2, idx)
            assert len(coeffs) == 3
            seen.add(coeffs)
        assert len(seen) == 27  # all distinct

    def test_low_indices_are_constants(self):
        f = field(5)
        for idx in range(5):
            coeffs = poly_from_index(f, 2, idx)
            assert coeffs == (idx, 0, 0)

    def test_enumeration_matches_index(self):
        f = field(4)
        listed = list(enumerate_polynomials(f, 1))
        assert len(listed) == 16
        for idx, coeffs in enumerate(listed):
            assert coeffs == poly_from_index(f, 1, idx)

    def test_count_prefix(self):
        f = field(5)
        assert len(list(enumerate_polynomials(f, 1, count=7))) == 7

    def test_count_bounds(self):
        f = field(3)
        with pytest.raises(ValueError):
            list(enumerate_polynomials(f, 1, count=10))
        with pytest.raises(ValueError):
            poly_from_index(f, 1, 9)


class TestValueTable:
    @pytest.mark.parametrize("q,k", [(3, 1), (5, 1), (4, 1), (7, 2), (9, 1)])
    def test_distinct_rows_agree_in_at_most_k_points(self, q, k):
        """The cover-freeness workhorse: deg-<=k polys share <= k values."""
        count = min(q ** (k + 1), 40)
        rows = value_table(field(q), k, count)
        for i in range(count):
            for j in range(i + 1, count):
                agreements = int((rows[i] == rows[j]).sum())
                assert agreements <= k

    def test_rows_match_enumeration(self):
        f = field(5)
        rows = value_table(f, 1, 10)
        for r, coeffs in enumerate(enumerate_polynomials(f, 1, count=10)):
            expected = evaluate_poly_all(f, coeffs)
            assert (rows[r] == expected).all()

    def test_shape(self):
        rows = value_table(field(8), 1, 12)
        assert rows.shape == (12, 8)
        assert rows.dtype == np.int64
        assert rows.min() >= 0 and rows.max() < 8


@given(q=st.sampled_from([3, 4, 5]), data=st.data())
@settings(max_examples=25, deadline=None)
def test_poly_addition_homomorphism(q, data):
    """(f + g)(x) == f(x) + g(x) under coefficient-wise field addition."""
    f = field(q)
    deg = data.draw(st.integers(min_value=0, max_value=2))
    c1 = [data.draw(st.integers(min_value=0, max_value=q - 1))
          for _ in range(deg + 1)]
    c2 = [data.draw(st.integers(min_value=0, max_value=q - 1))
          for _ in range(deg + 1)]
    summed = [f.add(a, b) for a, b in zip(c1, c2)]
    for x in f.elements:
        assert evaluate_poly(f, summed, x) == \
            f.add(evaluate_poly(f, c1, x), evaluate_poly(f, c2, x))
