"""Latin squares, MOLS, MacNeish's product, transversal designs."""

from itertools import combinations

import numpy as np
import pytest

from repro.combinatorics.latin import (
    are_orthogonal,
    cyclic_latin_square,
    is_latin_square,
    macneish_bound,
    mols,
    mols_prime_power,
    oa_from_mols,
    transversal_design,
)
from repro.combinatorics.orthogonal import is_orthogonal_array


class TestLatinSquares:
    @pytest.mark.parametrize("m", [1, 2, 3, 5, 8])
    def test_cyclic_is_latin(self, m):
        assert is_latin_square(cyclic_latin_square(m))

    def test_non_latin_rejected(self):
        assert not is_latin_square(np.zeros((3, 3), dtype=int))
        assert not is_latin_square(np.zeros((2, 3), dtype=int))
        assert not is_latin_square(np.arange(4))

    def test_orthogonality_checker(self):
        a = cyclic_latin_square(3)
        b = (a + a) % 3  # L(i,j) = 2i + 2j: rows/cols still permutations
        assert is_latin_square(b)
        # a and the square 2i + j are orthogonal over GF(3):
        i = np.arange(3)
        c = (2 * i[:, None] + i[None, :]) % 3
        assert are_orthogonal(a, c)
        assert not are_orthogonal(a, a)

    def test_orthogonality_shape_mismatch(self):
        assert not are_orthogonal(cyclic_latin_square(3), cyclic_latin_square(4))


class TestMOLS:
    @pytest.mark.parametrize("q", [3, 4, 5, 7, 8, 9])
    def test_prime_power_complete_set(self, q):
        squares = mols_prime_power(q)
        assert len(squares) == q - 1
        for sq in squares:
            assert is_latin_square(sq)
        for a, b in combinations(squares, 2):
            assert are_orthogonal(a, b)

    @pytest.mark.parametrize("m,expected", [
        (2, 1), (3, 2), (4, 3), (6, 1), (10, 1), (12, 2), (15, 2), (20, 3),
    ])
    def test_macneish_bound(self, m, expected):
        assert macneish_bound(m) == expected

    @pytest.mark.parametrize("m", [6, 10, 12, 15])
    def test_composite_orders_via_macneish(self, m):
        squares = mols(m)
        assert len(squares) == macneish_bound(m)
        for sq in squares:
            assert sq.shape == (m, m)
            assert is_latin_square(sq)
        for a, b in combinations(squares, 2):
            assert are_orthogonal(a, b)

    def test_requesting_too_many(self):
        with pytest.raises(ValueError, match="MacNeish"):
            mols(6, count=2)

    def test_count_zero(self):
        assert mols(5, count=0) == []


class TestTransversalDesign:
    @pytest.mark.parametrize("k,m", [(3, 3), (3, 10), (4, 5), (4, 12), (5, 4)])
    def test_block_structure(self, k, m):
        points, blocks = transversal_design(k, m)
        assert points == k * m
        assert len(blocks) == m * m
        groups = [set(range(g * m, (g + 1) * m)) for g in range(k)]
        for block in blocks:
            assert len(block) == k
            for grp in groups:
                assert len(block & grp) == 1  # exactly one point per group

    @pytest.mark.parametrize("k,m", [(3, 4), (3, 6), (4, 5)])
    def test_pairwise_intersection_at_most_one(self, k, m):
        _, blocks = transversal_design(k, m)
        for b1, b2 in combinations(blocks, 2):
            assert len(b1 & b2) <= 1

    @pytest.mark.parametrize("k,m", [(3, 3), (4, 5), (3, 10)])
    def test_oa_property(self, k, m):
        rows = oa_from_mols(m, k)
        assert is_orthogonal_array(rows, strength=2, levels=m)

    def test_infeasible_k(self):
        with pytest.raises(ValueError):
            transversal_design(4, 6)  # would need 2 MOLS of order 6
