"""Group testing on cover-free families: the d-disjunct round trip."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.combinatorics.coverfree import CoverFreeFamily
from repro.combinatorics.grouptesting import (
    decode,
    identify_defectives,
    pools_for_item,
    run_tests,
)


class TestPrimitives:
    def test_pools_for_item(self):
        fam = CoverFreeFamily.from_sets(4, [{0, 1}, {2, 3}])
        assert pools_for_item(fam, 0) == {0, 1}
        assert pools_for_item(fam, 1) == {2, 3}

    def test_run_tests_union(self):
        fam = CoverFreeFamily.from_sets(4, [{0, 1}, {2, 3}, {1, 2}])
        assert run_tests(fam, {0}) == 0b0011
        assert run_tests(fam, {0, 1}) == 0b1111
        assert run_tests(fam, set()) == 0

    def test_decode_requires_all_pools_positive(self):
        fam = CoverFreeFamily.from_sets(4, [{0, 1}, {2, 3}])
        assert decode(fam, 0b0011) == {0}
        assert decode(fam, 0b0111) == {0}
        assert decode(fam, 0b1111) == {0, 1}

    def test_capacity_enforced(self):
        fam = CoverFreeFamily.from_polynomial_code(3, 1, count=6)
        with pytest.raises(ValueError, match="capacity"):
            identify_defectives(fam, {0, 1, 2}, d=2)


class TestExactRecovery:
    @pytest.mark.parametrize("builder,d", [
        (lambda: CoverFreeFamily.from_polynomial_code(5, 1, count=20), 4),
        (lambda: CoverFreeFamily.from_steiner_triple_system(9), 2),
        (lambda: CoverFreeFamily.from_projective_plane(3), 3),
        (lambda: CoverFreeFamily.trivial(8), 7),
    ])
    def test_all_small_defective_sets_recovered(self, builder, d):
        """Exhaustive over defective sets up to size min(d, 2): the decoder
        must return exactly the planted set."""
        fam = builder()
        assert fam.is_d_cover_free(d)
        items = range(fam.size)
        for size in range(0, min(d, 2) + 1):
            for defectives in combinations(items, size):
                planted = set(defectives)
                assert identify_defectives(fam, planted, d) == planted

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_random_defective_sets(self, data):
        fam = CoverFreeFamily.from_polynomial_code(5, 1, count=25)
        d = 4
        size = data.draw(st.integers(min_value=0, max_value=d))
        planted = set(data.draw(st.permutations(range(25)))[:size])
        assert identify_defectives(fam, planted, d) == planted

    def test_overloaded_design_can_overreport(self):
        """Past capacity the decoder may return a superset — demonstrate
        the failure mode the capacity check guards against."""
        fam = CoverFreeFamily.from_steiner_triple_system(7)  # 2-cover-free
        # Seven triples on 7 points: 3 defectives can cover everything.
        positives = run_tests(fam, {0, 1, 2})
        decoded = decode(fam, positives)
        assert {0, 1, 2} <= decoded  # never misses true defectives
