"""Finite-field arithmetic: axioms, tables, helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.combinatorics.gf import (
    GF,
    field,
    is_prime,
    is_prime_power,
    next_prime_power,
    prime_power_decomposition,
    prime_powers,
    primes,
)

FIELD_ORDERS = [2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 25, 27]


class TestPrimality:
    def test_small_primes(self):
        assert [p for p in range(20) if is_prime(p)] == [2, 3, 5, 7, 11, 13, 17, 19]

    def test_larger_primes(self):
        assert is_prime(97)
        assert is_prime(101)
        assert not is_prime(91)  # 7 * 13
        assert not is_prime(1)
        assert not is_prime(0)

    def test_primes_iterator(self):
        gen = primes()
        assert [next(gen) for _ in range(8)] == [2, 3, 5, 7, 11, 13, 17, 19]

    def test_decomposition_prime(self):
        assert prime_power_decomposition(7) == (7, 1)

    def test_decomposition_power(self):
        assert prime_power_decomposition(8) == (2, 3)
        assert prime_power_decomposition(9) == (3, 2)
        assert prime_power_decomposition(27) == (3, 3)
        assert prime_power_decomposition(121) == (11, 2)

    def test_decomposition_composite(self):
        assert prime_power_decomposition(6) is None
        assert prime_power_decomposition(12) is None
        assert prime_power_decomposition(100) is None
        assert prime_power_decomposition(1) is None

    def test_is_prime_power(self):
        assert [q for q in range(2, 20) if is_prime_power(q)] == \
            [2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 17, 19]

    def test_next_prime_power(self):
        assert next_prime_power(6) == 7
        assert next_prime_power(7) == 7
        assert next_prime_power(10) == 11
        assert next_prime_power(26) == 27

    def test_prime_powers_start(self):
        gen = prime_powers(24)
        assert [next(gen) for _ in range(3)] == [25, 27, 29]


@pytest.mark.parametrize("q", FIELD_ORDERS)
class TestFieldAxioms:
    """Exhaustive axiom checks: fields are tiny, so check everything."""

    def test_additive_group(self, q):
        f = GF(q)
        for a in f.elements:
            assert f.add(a, 0) == a
            assert f.add(a, f.neg(a)) == 0
        # Addition is a latin square (each row is a permutation).
        for a in f.elements:
            assert sorted(f.add(a, b) for b in f.elements) == list(range(q))

    def test_multiplicative_group(self, q):
        f = GF(q)
        for a in f.elements:
            assert f.mul(a, 1) == a
            assert f.mul(a, 0) == 0
            if a != 0:
                assert f.mul(a, f.inv(a)) == 1
        for a in range(1, q):
            assert sorted(f.mul(a, b) for b in f.elements) == list(range(q))

    def test_commutativity(self, q):
        f = GF(q)
        for a in f.elements:
            for b in f.elements:
                assert f.add(a, b) == f.add(b, a)
                assert f.mul(a, b) == f.mul(b, a)

    def test_associativity_sampled(self, q):
        f = GF(q)
        rng = np.random.default_rng(q)
        for _ in range(50):
            a, b, c = (int(v) for v in rng.integers(0, q, size=3))
            assert f.add(f.add(a, b), c) == f.add(a, f.add(b, c))
            assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))

    def test_distributivity_sampled(self, q):
        f = GF(q)
        rng = np.random.default_rng(q + 1)
        for _ in range(50):
            a, b, c = (int(v) for v in rng.integers(0, q, size=3))
            assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))

    def test_sub_is_add_neg(self, q):
        f = GF(q)
        for a in f.elements:
            for b in f.elements:
                assert f.sub(a, b) == f.add(a, f.neg(b))

    def test_characteristic(self, q):
        f = GF(q)
        # Adding 1 to itself p times gives 0.
        acc = 0
        for _ in range(f.p):
            acc = f.add(acc, 1)
        assert acc == 0

    def test_pow(self, q):
        f = GF(q)
        for a in f.elements:
            assert f.pow(a, 0) == 1
            assert f.pow(a, 1) == a
            assert f.pow(a, 2) == f.mul(a, a)
            assert f.pow(a, 3) == f.mul(f.mul(a, a), a)

    def test_fermat(self, q):
        """a**q == a for every element (the field's Frobenius fixed point)."""
        f = GF(q)
        for a in f.elements:
            assert f.pow(a, q) == a


class TestFieldErrors:
    def test_non_prime_power_rejected(self):
        with pytest.raises(ValueError, match="prime power"):
            GF(6)
        with pytest.raises(ValueError, match="prime power"):
            GF(12)

    def test_too_small(self):
        with pytest.raises(ValueError):
            GF(1)

    def test_zero_inverse(self):
        with pytest.raises(ZeroDivisionError):
            GF(5).inv(0)
        with pytest.raises(ZeroDivisionError):
            GF(5).div(3, 0)

    def test_out_of_range_elements(self):
        f = GF(5)
        with pytest.raises(ValueError):
            f.add(5, 0)
        with pytest.raises(ValueError):
            f.mul(0, -1)

    def test_negative_exponent(self):
        with pytest.raises(ValueError):
            GF(5).pow(2, -1)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            GF(True)


class TestVectorized:
    @pytest.mark.parametrize("q", [5, 8, 9])
    def test_add_vec_matches_scalar(self, q):
        f = GF(q)
        xs = np.arange(q, dtype=np.int64)
        table = f.add_vec(xs[:, None], xs[None, :])
        for a in range(q):
            for b in range(q):
                assert table[a, b] == f.add(a, b)

    @pytest.mark.parametrize("q", [5, 8, 9])
    def test_mul_vec_matches_scalar(self, q):
        f = GF(q)
        xs = np.arange(q, dtype=np.int64)
        table = f.mul_vec(xs[:, None], xs[None, :])
        for a in range(q):
            for b in range(q):
                assert table[a, b] == f.mul(a, b)


class TestMisc:
    def test_len_and_repr(self):
        assert len(GF(9)) == 9
        assert "GF(9" in repr(GF(9))
        assert repr(GF(7)) == "GF(7)"

    def test_modulus_exposed_for_extensions(self):
        f = GF(8)
        assert f.modulus is not None
        assert len(f.modulus) == 4  # degree-3 monic
        assert f.modulus[-1] == 1
        assert GF(7).modulus is None

    def test_field_cache(self):
        assert field(25) is field(25)
        assert field(25).order == 25

    def test_div(self):
        f = GF(7)
        for a in f.elements:
            for b in range(1, 7):
                assert f.mul(f.div(a, b), b) == a


@given(q=st.sampled_from([4, 8, 9, 16, 25]),
       data=st.data())
@settings(max_examples=30, deadline=None)
def test_extension_field_no_zero_divisors(q, data):
    """Nonzero product of nonzero elements — the irreducibility payoff."""
    f = field(q)
    a = data.draw(st.integers(min_value=1, max_value=q - 1))
    b = data.draw(st.integers(min_value=1, max_value=q - 1))
    assert f.mul(a, b) != 0
