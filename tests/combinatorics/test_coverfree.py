"""Cover-free families: bitmask utilities, exact/sampled checkers, constructions."""

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.combinatorics.coverfree import (
    CoverFreeFamily,
    can_cover,
    mask_from_set,
    max_coverage,
    set_from_mask,
    smallest_polynomial_parameters,
)


class TestMaskUtils:
    def test_roundtrip(self):
        for s in [set(), {0}, {1, 3, 5}, {0, 63}, {7, 8, 9}]:
            assert set_from_mask(mask_from_set(s)) == frozenset(s)

    def test_mask_values(self):
        assert mask_from_set([]) == 0
        assert mask_from_set([0]) == 1
        assert mask_from_set([0, 2]) == 5

    def test_set_from_zero(self):
        assert set_from_mask(0) == frozenset()


def brute_can_cover(target: int, candidates, r: int) -> bool:
    """Oracle: enumerate all <= r subsets."""
    if target == 0:
        return True
    for size in range(1, min(r, len(candidates)) + 1):
        for combo in combinations(candidates, size):
            union = 0
            for c in combo:
                union |= c
            if target & ~union == 0:
                return True
    return False


def brute_max_coverage(target: int, candidates, r: int) -> int:
    best = 0
    for size in range(1, min(r, len(candidates)) + 1):
        for combo in combinations(candidates, size):
            union = 0
            for c in combo:
                union |= c
            best = max(best, (union & target).bit_count())
    return best


class TestCanCover:
    def test_empty_target(self):
        assert can_cover(0, [1, 2], 1)

    def test_zero_budget(self):
        assert not can_cover(1, [1], 0)

    def test_single(self):
        assert can_cover(0b111, [0b111], 1)
        assert not can_cover(0b111, [0b110], 1)

    def test_needs_two(self):
        assert not can_cover(0b111, [0b110, 0b011], 1)
        assert can_cover(0b111, [0b110, 0b011], 2)

    def test_uncoverable_bit(self):
        assert not can_cover(0b1001, [0b0001, 0b0011], 5)

    @given(data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_matches_bruteforce(self, data):
        bits = data.draw(st.integers(min_value=1, max_value=8))
        target = data.draw(st.integers(min_value=1, max_value=(1 << bits) - 1))
        n_cands = data.draw(st.integers(min_value=0, max_value=6))
        cands = [data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
                 for _ in range(n_cands)]
        r = data.draw(st.integers(min_value=0, max_value=4))
        assert can_cover(target, cands, r) == brute_can_cover(target, cands, r)


class TestMaxCoverage:
    def test_exact_simple(self):
        assert max_coverage(0b1111, [0b1100, 0b0011, 0b1000], 2) == 4
        assert max_coverage(0b1111, [0b1100, 0b1000], 2) == 2

    def test_zero_budget(self):
        assert max_coverage(0b111, [0b111], 0) == 0

    def test_greedy_is_lower_bound(self):
        rng = np.random.default_rng(4)
        for _ in range(30):
            target = int(rng.integers(1, 256))
            cands = [int(rng.integers(0, 256)) for _ in range(5)]
            r = int(rng.integers(1, 4))
            greedy = max_coverage(target, cands, r, exact=False)
            exact = max_coverage(target, cands, r, exact=True)
            assert greedy <= exact

    @given(data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_matches_bruteforce(self, data):
        bits = data.draw(st.integers(min_value=1, max_value=8))
        target = data.draw(st.integers(min_value=1, max_value=(1 << bits) - 1))
        n_cands = data.draw(st.integers(min_value=1, max_value=6))
        cands = [data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
                 for _ in range(n_cands)]
        r = data.draw(st.integers(min_value=1, max_value=4))
        assert max_coverage(target, cands, r) == \
            brute_max_coverage(target, cands, r)


def brute_is_cover_free(family: CoverFreeFamily, d: int) -> bool:
    n = family.size
    d = min(d, n - 1)
    if d <= 0:
        return all(b != 0 for b in family.blocks)
    for i in range(n):
        others = [family.blocks[j] for j in range(n) if j != i]
        for combo in combinations(others, d):
            union = 0
            for c in combo:
                union |= c
            if family.blocks[i] & ~union == 0:
                return False
    return True


class TestCoverFreeFamily:
    def test_trivial_family(self):
        fam = CoverFreeFamily.trivial(6)
        assert fam.size == 6
        assert fam.ground == 6
        for d in range(1, 6):
            assert fam.is_d_cover_free(d)

    def test_from_sets_roundtrip(self):
        fam = CoverFreeFamily.from_sets(5, [{0, 1}, {2, 3}, {1, 4}])
        assert fam.block_sets() == [frozenset({0, 1}), frozenset({2, 3}),
                                    frozenset({1, 4})]

    def test_from_sets_range_check(self):
        with pytest.raises(ValueError):
            CoverFreeFamily.from_sets(3, [{0, 3}])

    def test_invalid_mask_rejected(self):
        with pytest.raises(ValueError):
            CoverFreeFamily(3, (8,))

    def test_block_sizes(self):
        fam = CoverFreeFamily.from_sets(6, [{0, 1, 2}, {3}, set()])
        assert fam.block_sizes().tolist() == [3, 1, 0]

    def test_empty_block_never_cover_free(self):
        fam = CoverFreeFamily.from_sets(4, [{0}, set(), {1}])
        assert not fam.is_d_cover_free(1)
        assert not fam.is_d_cover_free(1, exact=False,
                                       rng=np.random.default_rng(0))

    def test_covered_block_detected(self):
        # Pairwise-incomparable blocks: 1-cover-free, but {0,1} is covered
        # by the union of the other two.
        fam = CoverFreeFamily.from_sets(4, [{0, 1}, {1, 2}, {2, 0}])
        assert not fam.is_d_cover_free(2)
        assert fam.is_d_cover_free(1)

    def test_subset_block_violates_d1(self):
        # {0} is a subset of {0,1}: even d=1 fails (Sperner condition).
        fam = CoverFreeFamily.from_sets(4, [{0, 1}, {0}, {1}])
        assert not fam.is_d_cover_free(1)

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_exact_checker_matches_bruteforce(self, data):
        ground = data.draw(st.integers(min_value=2, max_value=7))
        size = data.draw(st.integers(min_value=2, max_value=5))
        blocks = tuple(
            data.draw(st.integers(min_value=0, max_value=(1 << ground) - 1))
            for _ in range(size)
        )
        fam = CoverFreeFamily(ground, blocks)
        d = data.draw(st.integers(min_value=1, max_value=4))
        assert fam.is_d_cover_free(d) == brute_is_cover_free(fam, d)

    def test_sampled_never_accepts_below_exact(self, rng):
        """Sampled=False results are genuine violations."""
        fam = CoverFreeFamily.from_sets(4, [{0, 1}, {1, 2}, {2, 0}])
        # d=2 is violated: the sampler must eventually find it.
        assert not fam.is_d_cover_free(2, exact=False, samples=500, rng=rng)

    def test_strength(self):
        fam = CoverFreeFamily.trivial(5)
        assert fam.cover_free_strength() == 4
        fam2 = CoverFreeFamily.from_sets(4, [{0, 1}, {1, 2}, {2, 0}])
        assert fam2.cover_free_strength() == 1
        fam3 = CoverFreeFamily.from_sets(4, [{0, 1}, {0}, {1}])
        assert fam3.cover_free_strength() == 0

    def test_find_violation(self):
        fam = CoverFreeFamily.from_sets(4, [{0, 1}, {1, 2}, {2, 0}])
        witness = fam.find_violation(2)
        assert witness is not None
        i, covers = witness
        union = 0
        for j in covers:
            union |= fam.blocks[j]
        assert fam.blocks[i] & ~union == 0

    def test_find_violation_none_for_cover_free(self):
        assert CoverFreeFamily.trivial(4).find_violation(2) is None

    def test_min_pairwise_margin(self):
        fam = CoverFreeFamily.from_sets(6, [{0, 1, 2}, {2, 3, 4}, {4, 5, 0}])
        # sizes 3, pairwise intersections 1 -> margin 2
        assert fam.min_pairwise_margin() == 2


class TestConstructions:
    @pytest.mark.parametrize("q,k,d", [(3, 1, 2), (5, 1, 4), (5, 1, 2),
                                       (7, 2, 3), (4, 1, 3)])
    def test_polynomial_family_cover_free(self, q, k, d):
        assert k * d < q, "test parameters must satisfy the sufficiency bound"
        fam = CoverFreeFamily.from_polynomial_code(q, k, count=min(q ** (k + 1), 30))
        assert fam.ground == q * q
        assert fam.is_d_cover_free(d)

    def test_polynomial_blocks_have_q_elements(self):
        fam = CoverFreeFamily.from_polynomial_code(5, 1)
        assert (fam.block_sizes() == 5).all()

    @pytest.mark.parametrize("v", [7, 9, 13, 15])
    def test_steiner_family_2_cover_free(self, v):
        fam = CoverFreeFamily.from_steiner_triple_system(v)
        assert fam.is_d_cover_free(2)

    @pytest.mark.parametrize("q", [2, 3, 4])
    def test_projective_family_q_cover_free(self, q):
        fam = CoverFreeFamily.from_projective_plane(q)
        assert fam.is_d_cover_free(q)
        # And q+1 must fail: q+1 lines through a common point cover any
        # other line entirely... actually they cover all points, so check
        # directly that strength does not exceed q for small q.
        if q == 2:
            assert not fam.is_d_cover_free(3)

    @pytest.mark.parametrize("q", [2, 3, 4])
    def test_affine_family_cover_free(self, q):
        fam = CoverFreeFamily.from_affine_plane(q)
        if q > 2:
            assert fam.is_d_cover_free(q - 1)

    def test_count_prefix(self):
        fam = CoverFreeFamily.from_steiner_triple_system(9, count=5)
        assert fam.size == 5


class TestParameterSelection:
    @pytest.mark.parametrize("n,d", [(10, 2), (25, 3), (100, 2), (64, 5),
                                     (500, 3)])
    def test_parameters_admissible(self, n, d):
        q, k = smallest_polynomial_parameters(n, d)
        assert q >= k * d + 1
        assert q ** (k + 1) >= n

    def test_small_case(self):
        q, k = smallest_polynomial_parameters(25, 3)
        assert (q, k) == (5, 1)  # L = 25, the known optimum here

    def test_frame_not_absurd(self):
        # Sanity: for n=100, D=2 the k=1 choice q=11 gives L=121; the
        # selection must do at least that well.
        q, k = smallest_polynomial_parameters(100, 2)
        assert q * q <= 121
