"""Steiner triple systems, difference triples, and finite planes."""

from itertools import combinations

import pytest

from repro.combinatorics.steiner import (
    affine_plane,
    difference_triples,
    is_projective_plane,
    is_steiner_triple_system,
    projective_plane,
    steiner_triple_system,
)


class TestSTS:
    @pytest.mark.parametrize("v", [9, 15, 21, 27, 33])
    def test_bose_orders(self, v):
        blocks = steiner_triple_system(v)
        assert len(blocks) == v * (v - 1) // 6
        assert is_steiner_triple_system(v, blocks)

    @pytest.mark.parametrize("v", [7, 13, 19, 25, 31, 37])
    def test_cyclic_orders(self, v):
        blocks = steiner_triple_system(v)
        assert len(blocks) == v * (v - 1) // 6
        assert is_steiner_triple_system(v, blocks)

    @pytest.mark.parametrize("v", [3])
    def test_trivial_order(self, v):
        # v = 3: single block {0,1,2} via Bose (t = 0).
        blocks = steiner_triple_system(v)
        assert blocks == [frozenset({0, 1, 2})]

    @pytest.mark.parametrize("v", [4, 5, 6, 8, 10, 11, 12, 14])
    def test_inadmissible_orders_rejected(self, v):
        with pytest.raises(ValueError, match="STS"):
            steiner_triple_system(v)

    def test_blocks_pairwise_intersect_in_at_most_one(self):
        """The 2-cover-freeness source property, checked directly."""
        blocks = steiner_triple_system(13)
        for b1, b2 in combinations(blocks, 2):
            assert len(b1 & b2) <= 1


class TestSTSVerifier:
    def test_rejects_duplicate_pair(self):
        blocks = [frozenset({0, 1, 2}), frozenset({0, 1, 3})]
        assert not is_steiner_triple_system(7, blocks)

    def test_rejects_wrong_block_size(self):
        assert not is_steiner_triple_system(7, [frozenset({0, 1})])

    def test_rejects_out_of_range(self):
        assert not is_steiner_triple_system(7, [frozenset({0, 1, 7})])

    def test_rejects_missing_pairs(self):
        blocks = steiner_triple_system(7)[:-1]
        assert not is_steiner_triple_system(7, blocks)


class TestDifferenceTriples:
    @pytest.mark.parametrize("t", [1, 2, 3, 4, 5, 6, 8, 10, 13, 15])
    def test_partition_property(self, t):
        v = 6 * t + 1
        triples = difference_triples(t, v)
        assert triples is not None
        used = [x for tr in triples for x in tr]
        assert sorted(used) == list(range(1, 3 * t + 1))
        for a, b, c in triples:
            assert a + b == c or a + b + c == v

    def test_minimum_t(self):
        assert difference_triples(1, 7) == [(1, 2, 3)]

    def test_budget_guard_raises_cleanly(self):
        """Beyond the tractable range the search refuses rather than hangs."""
        with pytest.raises(ValueError, match="node budget"):
            difference_triples(40, 241)

    def test_auto_selection_avoids_untractable_orders(self):
        """steiner_schedule never triggers the exponential search."""
        from repro.core.nonsleeping import steiner_schedule

        s = steiner_schedule(1800, 2)  # would pick v=104..109 range naively
        assert s.frame_length % 6 == 3 or s.frame_length <= 103


class TestProjectivePlane:
    @pytest.mark.parametrize("q", [2, 3, 4, 5])
    def test_axioms(self, q):
        v, lines = projective_plane(q)
        assert v == q * q + q + 1
        assert len(lines) == v
        assert is_projective_plane(v, lines)

    @pytest.mark.parametrize("q", [2, 3, 4])
    def test_two_lines_meet_in_exactly_one_point(self, q):
        _, lines = projective_plane(q)
        for l1, l2 in combinations(lines, 2):
            assert len(l1 & l2) == 1

    def test_fano_plane(self):
        v, lines = projective_plane(2)
        assert v == 7
        assert all(len(line) == 3 for line in lines)

    def test_non_prime_power_rejected(self):
        with pytest.raises(ValueError):
            projective_plane(6)


class TestProjectiveVerifier:
    def test_rejects_wrong_counts(self):
        v, lines = projective_plane(3)
        assert not is_projective_plane(v, lines[:-1])

    def test_rejects_tampered_line(self):
        v, lines = projective_plane(2)
        bad = list(lines)
        first = sorted(bad[0])
        second = sorted(bad[1])
        # Swap a point to create a duplicate pair somewhere.
        tampered = frozenset(first[:-1] + [next(p for p in second
                                                if p not in first)])
        bad[0] = tampered
        assert not is_projective_plane(v, bad)


class TestAffinePlane:
    @pytest.mark.parametrize("q", [2, 3, 4, 5])
    def test_counts(self, q):
        v, lines = affine_plane(q)
        assert v == q * q
        assert len(lines) == q * q + q
        assert all(len(line) == q for line in lines)

    @pytest.mark.parametrize("q", [2, 3, 4])
    def test_pairwise_intersection_at_most_one(self, q):
        _, lines = affine_plane(q)
        for l1, l2 in combinations(lines, 2):
            assert len(l1 & l2) <= 1

    @pytest.mark.parametrize("q", [3, 4])
    def test_every_pair_on_exactly_one_line(self, q):
        v, lines = affine_plane(q)
        counts = {pair: 0 for pair in combinations(range(v), 2)}
        for line in lines:
            for pair in combinations(sorted(line), 2):
                counts[pair] += 1
        assert all(c == 1 for c in counts.values())

    def test_non_prime_power_rejected(self):
        with pytest.raises(ValueError):
            affine_plane(10)
