"""The shared argument-validation helpers."""

import math

import pytest

from repro._validation import (
    check_class_params,
    check_int,
    check_node,
    check_nodes,
    check_nonnegative_float,
    check_positive_float,
    check_probability,
)


class TestCheckInt:
    def test_passthrough(self):
        assert check_int(5, "x") == 5
        assert check_int(-3, "x") == -3

    def test_bounds(self):
        assert check_int(5, "x", minimum=5, maximum=5) == 5
        with pytest.raises(ValueError, match=">= 6"):
            check_int(5, "x", minimum=6)
        with pytest.raises(ValueError, match="<= 4"):
            check_int(5, "x", maximum=4)

    def test_bool_rejected(self):
        with pytest.raises(TypeError, match="int"):
            check_int(True, "x")

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            check_int(5.0, "x")

    def test_name_in_message(self):
        with pytest.raises(ValueError, match="frob"):
            check_int(1, "frob", minimum=2)


class TestCheckNode:
    def test_range(self):
        assert check_node(0, "x", 5) == 0
        assert check_node(4, "x", 5) == 4
        with pytest.raises(ValueError):
            check_node(5, "x", 5)
        with pytest.raises(ValueError):
            check_node(-1, "x", 5)


class TestCheckNodes:
    def test_frozenset(self):
        assert check_nodes([2, 0, 1], "ys", 4) == frozenset({0, 1, 2})

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            check_nodes([1, 1], "ys", 4)

    def test_element_errors_indexed(self):
        with pytest.raises(ValueError, match="ys\\[1\\]"):
            check_nodes([0, 9], "ys", 4)


class TestClassParams:
    def test_valid(self):
        assert check_class_params(10, 3) == (10, 3)
        assert check_class_params(3, 2) == (3, 2)

    def test_degree_too_large(self):
        with pytest.raises(ValueError):
            check_class_params(5, 5)

    def test_degree_too_small(self):
        with pytest.raises(ValueError):
            check_class_params(5, 1)

    def test_n_too_small(self):
        with pytest.raises(ValueError):
            check_class_params(2, 2)


class TestFloats:
    def test_probability(self):
        assert check_probability(0.5, "p") == 0.5
        assert check_probability(0, "p") == 0.0
        assert check_probability(1, "p") == 1.0
        with pytest.raises(ValueError):
            check_probability(1.2, "p")
        with pytest.raises(TypeError):
            check_probability("0.5", "p")
        with pytest.raises(TypeError):
            check_probability(True, "p")

    def test_positive(self):
        assert check_positive_float(0.1, "x") == 0.1
        assert check_positive_float(3, "x") == 3.0
        with pytest.raises(ValueError):
            check_positive_float(0.0, "x")
        with pytest.raises(ValueError):
            check_positive_float(-1.0, "x")
        with pytest.raises(ValueError):
            check_positive_float(math.inf, "x")
        with pytest.raises(ValueError):
            check_positive_float(math.nan, "x")

    def test_nonnegative(self):
        assert check_nonnegative_float(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            check_nonnegative_float(-0.1, "x")
        with pytest.raises(ValueError):
            check_nonnegative_float(math.nan, "x")
        with pytest.raises(ValueError):
            check_nonnegative_float(math.inf, "x")
