"""The committed API reference must match the code."""

import sys
from pathlib import Path

ROOT = Path(__file__).parent.parent


def test_api_reference_is_current():
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        from gen_api_docs import generate
    finally:
        sys.path.pop(0)
    committed = (ROOT / "docs" / "api.md").read_text()
    assert committed == generate(), (
        "docs/api.md is stale; regenerate with: python tools/gen_api_docs.py"
    )


def test_api_reference_covers_key_entry_points():
    text = (ROOT / "docs" / "api.md").read_text()
    for needle in ("construct", "is_topology_transparent",
                   "average_throughput", "CoverFreeFamily", "Simulator",
                   "plan_schedule"):
        assert needle in text
