"""Examples don't rot: smoke-run the fast ones end to end.

The slower field studies (environment_monitoring, dynamic_topology,
mobile_fleet) take tens of seconds and are exercised through their
underlying experiment functions elsewhere; here the two fast examples run
for real so the documented entry points stay working.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=240,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "topology-transparent" in out
    assert "Optimality ratio: 1.000" in out


def test_schedule_planner():
    out = run_example("schedule_planner.py")
    assert "chosen family" in out
    assert "round-trip verified" in out


def test_all_examples_exist_and_have_docstrings():
    expected = {
        "quickstart.py",
        "environment_monitoring.py",
        "duty_cycle_tradeoff.py",
        "dynamic_topology.py",
        "schedule_planner.py",
        "mobile_fleet.py",
        "jammed_slot_diagnosis.py",
    }
    found = {p.name for p in EXAMPLES.glob("*.py")}
    assert expected <= found
    for name in expected:
        text = (EXAMPLES / name).read_text()
        assert text.lstrip().startswith(('"""', '#!'))
        assert '"""' in text


@pytest.mark.parametrize("name", ["duty_cycle_tradeoff.py"])
def test_tradeoff_example(name):
    out = run_example(name)
    assert "Theorem 8" in out


def test_jammed_slot_diagnosis():
    out = run_example("jammed_slot_diagnosis.py")
    assert "RECOVERED" in out
    assert "MISMATCH" not in out
