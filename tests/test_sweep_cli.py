"""The ``repro sweep`` command and the sweep-output validator.

The golden files under ``tests/data/`` pin the CLI's output contract:
``sweep_golden.jsonl`` is the byte-exact JSONL that the spec in
``sweep_golden_spec.jsonl`` must produce on any machine, worker count or
resume history.  Regenerate (only after a deliberate schema bump) with::

    PYTHONPATH=src python -m repro sweep \\
        -i tests/data/sweep_golden_spec.jsonl \\
        -o tests/data/sweep_golden.jsonl
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.faults import FaultPlan
from repro.analysis.sweeps import ShardTask, SweepSpec

DATA = Path(__file__).parent / "data"
GOLDEN_SPEC = DATA / "sweep_golden_spec.jsonl"
GOLDEN = DATA / "sweep_golden.jsonl"

sys.path.insert(0, str(Path(__file__).parent.parent / "tools"))
try:
    from validate_sweep import validate, validate_lines
    from validate_sweep import main as validate_main
finally:
    sys.path.pop(0)


def good_row() -> dict:
    return json.loads(GOLDEN.read_text().splitlines()[0])


class TestGolden:
    def test_cli_matches_golden_bytes(self, tmp_path):
        out = tmp_path / "out.jsonl"
        assert main(["sweep", "-i", str(GOLDEN_SPEC), "-o", str(out)]) == 0
        assert out.read_bytes() == GOLDEN.read_bytes()

    def test_golden_matches_golden_after_parallel_resume(self, tmp_path):
        out = tmp_path / "out.jsonl"
        ckpt = tmp_path / "ckpt"
        assert main(["sweep", "-i", str(GOLDEN_SPEC), "-o", str(out),
                     "--jobs", "2", "--shard-size", "1",
                     "--checkpoint-dir", str(ckpt)]) == 0
        assert out.read_bytes() == GOLDEN.read_bytes()
        # Drop one shard checkpoint and resume: still byte-identical.
        shards = sorted(ckpt.glob("*.jsonl"))
        assert len(shards) == 2
        shards[0].unlink()
        out2 = tmp_path / "out2.jsonl"
        assert main(["sweep", "-i", str(GOLDEN_SPEC), "-o", str(out2),
                     "--jobs", "2", "--shard-size", "1",
                     "--checkpoint-dir", str(ckpt), "--resume"]) == 0
        assert out2.read_bytes() == GOLDEN.read_bytes()

    def test_golden_passes_validator(self):
        assert validate_lines(GOLDEN.read_text()) == []

    def test_stdout_and_stdin_paths(self, capsys, monkeypatch):
        import io
        monkeypatch.setattr("sys.stdin",
                            io.StringIO(GOLDEN_SPEC.read_text()))
        assert main(["sweep"]) == 0
        assert capsys.readouterr().out.encode() == GOLDEN.read_bytes()


class TestCliErrors:
    def test_resume_requires_checkpoint_dir(self, capsys):
        assert main(["sweep", "-i", str(GOLDEN_SPEC), "--resume"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_unreadable_input(self, capsys, tmp_path):
        assert main(["sweep", "-i", str(tmp_path / "missing.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_spec_line(self, capsys, tmp_path):
        spec = tmp_path / "spec.jsonl"
        spec.write_text('{"families": ["klingon"]}\n')
        assert main(["sweep", "-i", str(spec)]) == 2
        err = capsys.readouterr().err
        assert f"{spec}:1:" in err and "unknown family" in err

    def test_empty_input(self, capsys, tmp_path):
        spec = tmp_path / "spec.jsonl"
        spec.write_text("\n")
        assert main(["sweep", "-i", str(spec)]) == 2

    def test_bad_fault_plan(self, capsys, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text('{"unknown_knob": 1}')
        assert main(["sweep", "-i", str(GOLDEN_SPEC),
                     "--fault-plan", str(plan)]) == 2

    def test_failed_shard_exits_3(self, capsys, tmp_path):
        # Target an unretried crash at the first shard's digest.
        spec = SweepSpec.from_dict(
            json.loads(GOLDEN_SPEC.read_text().splitlines()[0]))
        points = spec.expand()
        digest = ShardTask(spec, (points[0],), 0).key()
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps(FaultPlan(
            targeted_worker_faults=((digest, ("crash",) * 6),)).to_dict()))
        out = tmp_path / "out.jsonl"
        assert main(["sweep", "-i", str(GOLDEN_SPEC), "-o", str(out),
                     "--shard-size", "1", "--max-retries", "0",
                     "--fault-plan", str(plan)]) == 3
        assert "1 shards failed" in capsys.readouterr().err
        rows = [json.loads(line) for line in
                out.read_text().splitlines()]
        assert "error" in rows[0] and "metrics" in rows[1]


class TestValidator:
    def test_good_row(self):
        assert validate(good_row()) == []

    def test_error_row(self):
        row = good_row()
        del row["metrics"]
        row["error"] = "ValueError: boom"
        assert validate(row) == []

    @pytest.mark.parametrize("mutate, fragment", [
        (lambda r: r.update(format="nope"), "'format'"),
        (lambda r: r.update(version=2), "'version'"),
        (lambda r: r.pop("point"), "missing 'point'"),
        (lambda r: r["point"].update(n="ten"), "point.n"),
        (lambda r: r["point"].update(seed=True), "point.seed"),
        (lambda r: r.update(error="also"), "exactly one"),
        (lambda r: r.pop("metrics"), "exactly one"),
        (lambda r: r["metrics"].pop("slots"), "metrics.slots: missing"),
        (lambda r: r["metrics"].update(duty_cycle="high"),
         "metrics.duty_cycle"),
        (lambda r: r["metrics"].update(slots=None), "metrics.slots"),
    ])
    def test_mutations_are_caught(self, mutate, fragment):
        row = good_row()
        mutate(row)
        problems = validate(row)
        assert problems and any(fragment in p for p in problems), problems

    def test_null_latency_is_allowed(self):
        row = good_row()
        row["metrics"]["mean_latency_slots"] = None
        assert validate(row) == []

    def test_non_object_row(self):
        assert validate([1, 2]) == ["row must be a JSON object, got list"]

    def test_lines_blank_and_unparseable(self):
        text = "\nnot json\n"
        problems = validate_lines(text)
        assert problems[0] == "line 1: blank line"
        assert problems[1].startswith("line 2: unparseable")

    def test_main_exit_codes(self, tmp_path, capsys):
        assert validate_main([str(GOLDEN)]) == 0
        assert "valid (2 rows, 0 error rows)" in capsys.readouterr().out
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"format": "nope"}\n')
        assert validate_main([str(bad)]) == 1
        assert validate_main([str(tmp_path / "gone.jsonl")]) == 2
        assert validate_main([]) == 2
